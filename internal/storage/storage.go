// Package storage provides the paged-file abstraction beneath the buffer
// manager: a flat, dense array of 1024-byte pages addressed by page ID.
//
// Two backends are provided. Mem keeps pages in memory and is what the
// benchmark harness uses (the paper's metric is page accesses, which the
// buffer manager counts identically for either backend). Disk stores pages
// in an ordinary file via os.File so the same engine can run persistently.
package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"tdbms/internal/page"
)

// File is a dense array of pages.
type File interface {
	// ReadPage copies page id into p.
	ReadPage(id page.ID, p *page.Page) error
	// ReadPages copies the consecutive pages id..id+len(ps)-1 into ps in
	// one operation — the readahead path of the buffer manager. The whole
	// run must be in range.
	ReadPages(id page.ID, ps []page.Page) error
	// WritePage stores p at page id. id must be < NumPages().
	WritePage(id page.ID, p *page.Page) error
	// Allocate extends the file by one zeroed page and returns its ID.
	Allocate() (page.ID, error)
	// NumPages reports the current number of pages.
	NumPages() int
	// Truncate discards all pages.
	Truncate() error
	// Close releases underlying resources.
	Close() error
}

func checkBounds(id page.ID, n int) error {
	if id < 0 || int(id) >= n {
		return fmt.Errorf("storage: page %d out of range [0,%d)", id, n)
	}
	return nil
}

// Mem is an in-memory File. The zero value is an empty file ready to use.
// Page accesses are latched so concurrent readers sharing the file (via
// separate buffer handles) never observe a torn page or a resizing slice.
type Mem struct {
	mu    sync.RWMutex
	pages []page.Page
}

// NewMem returns an empty in-memory paged file.
func NewMem() *Mem { return &Mem{} }

// ReadPage implements File.
func (m *Mem) ReadPage(id page.ID, p *page.Page) error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := checkBounds(id, len(m.pages)); err != nil {
		return err
	}
	*p = m.pages[id]
	return nil
}

// ReadPages implements File with one range copy.
func (m *Mem) ReadPages(id page.ID, ps []page.Page) error {
	if len(ps) == 0 {
		return nil
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := checkBounds(id, len(m.pages)); err != nil {
		return err
	}
	if err := checkBounds(id+page.ID(len(ps))-1, len(m.pages)); err != nil {
		return err
	}
	copy(ps, m.pages[id:])
	return nil
}

// WritePage implements File.
func (m *Mem) WritePage(id page.ID, p *page.Page) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := checkBounds(id, len(m.pages)); err != nil {
		return err
	}
	m.pages[id] = *p
	return nil
}

// Allocate implements File.
func (m *Mem) Allocate() (page.ID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = append(m.pages, page.Page{})
	return page.ID(len(m.pages) - 1), nil
}

// NumPages implements File.
func (m *Mem) NumPages() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.pages)
}

// Truncate implements File.
func (m *Mem) Truncate() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pages = m.pages[:0]
	return nil
}

// Close implements File.
func (m *Mem) Close() error { return nil }

// Disk is a File backed by an operating-system file. The page data itself
// is accessed with positioned reads/writes, which the OS serializes; the
// latch guards the page count against concurrent Allocate/Truncate.
type Disk struct {
	mu   sync.RWMutex
	f    *os.File
	path string
	n    int
}

// OpenDisk opens (creating if necessary) a disk-backed paged file.
func OpenDisk(path string) (*Disk, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // already failing; the open error wins
		return nil, err
	}
	if st.Size()%page.Size != 0 {
		_ = f.Close()
		return nil, fmt.Errorf("storage: %s size %d is not a multiple of the page size", path, st.Size())
	}
	return &Disk{f: f, path: path, n: int(st.Size() / page.Size)}, nil
}

// wrap adds the file and page context a raw os error lacks.
func (d *Disk) wrap(op string, id page.ID, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("storage: %s page %d of %s: %w", op, id, filepath.Base(d.path), err)
}

// ReadPage implements File.
func (d *Disk) ReadPage(id page.ID, p *page.Page) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := checkBounds(id, d.n); err != nil {
		return err
	}
	_, err := d.f.ReadAt(p[:], int64(id)*page.Size)
	return d.wrap("read", id, err)
}

// ReadPages implements File with one positioned read covering the run.
func (d *Disk) ReadPages(id page.ID, ps []page.Page) error {
	if len(ps) == 0 {
		return nil
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := checkBounds(id, d.n); err != nil {
		return err
	}
	if err := checkBounds(id+page.ID(len(ps))-1, d.n); err != nil {
		return err
	}
	buf := make([]byte, len(ps)*page.Size)
	if _, err := d.f.ReadAt(buf, int64(id)*page.Size); err != nil {
		return fmt.Errorf("storage: read pages %d..%d of %s: %w",
			id, int(id)+len(ps)-1, filepath.Base(d.path), err)
	}
	for i := range ps {
		copy(ps[i][:], buf[i*page.Size:])
	}
	return nil
}

// WritePage implements File.
func (d *Disk) WritePage(id page.ID, p *page.Page) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := checkBounds(id, d.n); err != nil {
		return err
	}
	_, err := d.f.WriteAt(p[:], int64(id)*page.Size)
	return d.wrap("write", id, err)
}

// Allocate implements File.
func (d *Disk) Allocate() (page.ID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var zero page.Page
	if _, err := d.f.WriteAt(zero[:], int64(d.n)*page.Size); err != nil {
		return page.Nil, d.wrap("allocate", page.ID(d.n), err)
	}
	d.n++
	return page.ID(d.n - 1), nil
}

// NumPages implements File.
func (d *Disk) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.n
}

// Truncate implements File.
func (d *Disk) Truncate() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: truncate %s: %w", filepath.Base(d.path), err)
	}
	d.n = 0
	return nil
}

// Close implements File.
func (d *Disk) Close() error {
	// The statement path reaches File.Close only for memory-backed query
	// temporaries; real disk files are closed on designated flush paths
	// (destroy, modify, Database.Close). The call-graph analysis cannot
	// separate the implementations behind the interface, hence:
	//tdbvet:ignore latchorder only memory-backed temporaries are closed under the statement lock; disk closes happen on flush paths
	if err := d.f.Close(); err != nil {
		return fmt.Errorf("storage: close %s: %w", filepath.Base(d.path), err)
	}
	return nil
}
