package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Log is a flat byte file for append-style logging — the storage surface
// beneath the write-ahead log. Unlike File it is not paged: the WAL frames
// variable-length records itself and addresses them by byte offset (the
// LSN). Offsets are absolute; the caller tracks its own logical tail, so a
// torn append can simply be overwritten by the next one.
type Log interface {
	// WriteAt stores b at byte offset off, extending the file as needed.
	WriteAt(b []byte, off int64) (int, error)
	// ReadAt fills b from byte offset off (io.ReadAt contract).
	ReadAt(b []byte, off int64) (int, error)
	// Size reports the current file size in bytes.
	Size() (int64, error)
	// Sync forces written data to stable storage.
	Sync() error
	// Truncate cuts the file to the given size.
	Truncate(size int64) error
	// Close releases underlying resources.
	Close() error
}

// DiskLog is a Log backed by an operating-system file. It carries no latch
// of its own: positioned reads and writes are serialized by the OS, and the
// WAL manager above already serializes appends and truncation.
type DiskLog struct {
	f    *os.File
	path string
}

// OpenDiskLog opens (creating if necessary) a disk-backed log file.
func OpenDiskLog(path string) (*DiskLog, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &DiskLog{f: f, path: path}, nil
}

// lwrap adds file context to a raw os error.
func (l *DiskLog) lwrap(op string, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("storage: %s log %s: %w", op, filepath.Base(l.path), err)
}

// WriteAt implements Log.
func (l *DiskLog) WriteAt(b []byte, off int64) (int, error) {
	n, err := l.f.WriteAt(b, off)
	return n, l.lwrap("write", err)
}

// ReadAt implements Log.
func (l *DiskLog) ReadAt(b []byte, off int64) (int, error) {
	n, err := l.f.ReadAt(b, off)
	if err != nil && n == len(b) {
		// Full read at EOF boundary: the data is all there.
		return n, nil
	}
	return n, l.lwrap("read", err)
}

// Size implements Log.
func (l *DiskLog) Size() (int64, error) {
	st, err := l.f.Stat()
	if err != nil {
		return 0, l.lwrap("stat", err)
	}
	return st.Size(), nil
}

// Sync implements Log.
func (l *DiskLog) Sync() error { return l.lwrap("sync", l.f.Sync()) }

// Truncate implements Log.
func (l *DiskLog) Truncate(size int64) error {
	return l.lwrap("truncate", l.f.Truncate(size))
}

// Close implements Log.
func (l *DiskLog) Close() error { return l.lwrap("close", l.f.Close()) }

// MemLog is an in-memory Log for tests. Accesses are latched so concurrent
// appenders and readers never observe a resizing slice.
type MemLog struct {
	mu sync.RWMutex
	b  []byte
}

// NewMemLog returns an empty in-memory log.
func NewMemLog() *MemLog { return &MemLog{} }

// WriteAt implements Log, zero-filling any gap before off.
func (m *MemLog) WriteAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: write log at negative offset %d", off)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if need := off + int64(len(b)); need > int64(len(m.b)) {
		grown := make([]byte, need)
		copy(grown, m.b)
		m.b = grown
	}
	copy(m.b[off:], b)
	return len(b), nil
}

// ReadAt implements Log.
func (m *MemLog) ReadAt(b []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("storage: read log at negative offset %d", off)
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	if off >= int64(len(m.b)) {
		return 0, fmt.Errorf("storage: read log at %d past size %d", off, len(m.b))
	}
	n := copy(b, m.b[off:])
	if n < len(b) {
		return n, fmt.Errorf("storage: short log read at %d: %d of %d bytes", off, n, len(b))
	}
	return n, nil
}

// Size implements Log.
func (m *MemLog) Size() (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return int64(len(m.b)), nil
}

// Sync implements Log.
func (m *MemLog) Sync() error { return nil }

// Truncate implements Log.
func (m *MemLog) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < 0 || size > int64(len(m.b)) {
		if size < 0 {
			return fmt.Errorf("storage: truncate log to negative size %d", size)
		}
		grown := make([]byte, size)
		copy(grown, m.b)
		m.b = grown
		return nil
	}
	m.b = m.b[:size]
	return nil
}

// Close implements Log.
func (m *MemLog) Close() error { return nil }
