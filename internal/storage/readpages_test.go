package storage_test

import (
	"path/filepath"
	"testing"

	"tdbms/internal/page"
	"tdbms/internal/storage"
)

// fillFile writes n pages whose first byte is the page index, so a batch
// read can be checked page by page.
func fillFile(t *testing.T, f storage.File, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		id, err := f.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		var p page.Page
		p[0] = byte(i + 1)
		if err := f.WritePage(id, &p); err != nil {
			t.Fatal(err)
		}
	}
}

func testReadPages(t *testing.T, f storage.File) {
	fillFile(t, f, 6)

	ps := make([]page.Page, 4)
	if err := f.ReadPages(1, ps); err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if got, want := ps[i][0], byte(i+2); got != want {
			t.Errorf("batch page %d: first byte = %d, want %d", i, got, want)
		}
	}

	// The empty batch is a no-op even out of range.
	if err := f.ReadPages(99, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}

	// A run overflowing the file end must fail, not truncate.
	if err := f.ReadPages(4, make([]page.Page, 3)); err == nil {
		t.Error("overflowing batch succeeded")
	}
	if err := f.ReadPages(-1, make([]page.Page, 2)); err == nil {
		t.Error("negative start succeeded")
	}

	// A full-file batch matches single-page reads exactly.
	all := make([]page.Page, 6)
	if err := f.ReadPages(0, all); err != nil {
		t.Fatal(err)
	}
	for i := range all {
		var single page.Page
		if err := f.ReadPage(page.ID(i), &single); err != nil {
			t.Fatal(err)
		}
		if all[i] != single {
			t.Errorf("page %d: batch and single reads disagree", i)
		}
	}
}

func TestMemReadPages(t *testing.T) {
	testReadPages(t, storage.NewMem())
}

func TestDiskReadPages(t *testing.T) {
	d, err := storage.OpenDisk(filepath.Join(t.TempDir(), "readpages.tdb"))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	testReadPages(t, d)
}
