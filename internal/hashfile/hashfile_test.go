package hashfile

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"tdbms/internal/am"
	"tdbms/internal/buffer"
	"tdbms/internal/page"
	"tdbms/internal/storage"
)

// Benchmark geometry from the paper (Section 5.1 / Figure 5).
const (
	versionedWidth = 116 // rollback/historical tuple
	temporalWidth  = 124 // temporal tuple
	nTuples        = 1024
)

func key4() am.Key { return am.Key{Offset: 0, Width: 4} }

func mkTuple(width int, key int32) []byte {
	b := make([]byte, width)
	binary.LittleEndian.PutUint32(b, uint32(key))
	return b
}

func build(t *testing.T, width, fillfactor int) *File {
	t.Helper()
	buf := buffer.New("h", storage.NewMem())
	f, err := Build(buf, Meta{
		Width:   width,
		Key:     key4(),
		Primary: PrimaryPages(nTuples, width, fillfactor),
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func loadSequential(t *testing.T, f *File) {
	t.Helper()
	for id := int32(1); id <= nTuples; id++ {
		if _, err := f.Insert(mkTuple(f.meta.Width, id)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPrimaryPagesMatchPaper(t *testing.T) {
	// Figure 5: versioned hashed relations occupy 129 pages at 100% loading
	// and 257 at 50%, for 1024 tuples of 8 per page.
	if got := PrimaryPages(nTuples, versionedWidth, 100); got != 129 {
		t.Errorf("primary pages (100%%) = %d, want 129", got)
	}
	if got := PrimaryPages(nTuples, versionedWidth, 50); got != 257 {
		t.Errorf("primary pages (50%%) = %d, want 257", got)
	}
	if got := PrimaryPages(nTuples, temporalWidth, 100); got != 129 {
		t.Errorf("temporal primary pages (100%%) = %d, want 129", got)
	}
}

func TestInitialLoadHasNoOverflow(t *testing.T) {
	// With sequential ids and mod hashing, the initial 1024 tuples fit in
	// the primary pages exactly (buckets hold 7 or 8 tuples each).
	f := build(t, versionedWidth, 100)
	loadSequential(t, f)
	if got := f.NumPages(); got != 129 {
		t.Errorf("pages after load = %d, want 129 (no overflow)", got)
	}
}

func TestProbeFindsAllVersions(t *testing.T) {
	f := build(t, versionedWidth, 100)
	loadSequential(t, f)
	// Insert 3 extra versions of key 500.
	for i := 0; i < 3; i++ {
		if _, err := f.Insert(mkTuple(versionedWidth, 500)); err != nil {
			t.Fatal(err)
		}
	}
	it := f.Probe(500)
	n := 0
	for {
		_, tup, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got := f.meta.Key.Extract(tup); got != 500 {
			t.Fatalf("probe yielded key %d", got)
		}
		n++
	}
	if n != 4 {
		t.Errorf("probe found %d versions, want 4", n)
	}
}

func TestProbeMissingKeyReadsOneChain(t *testing.T) {
	f := build(t, versionedWidth, 100)
	loadSequential(t, f)
	f.Buffer().Invalidate()
	f.Buffer().ResetStats()
	it := f.Probe(999999) // hashes somewhere; no matching tuples
	if _, _, ok, err := it.Next(); err != nil || ok {
		t.Fatalf("probe of missing key: ok=%v err=%v", ok, err)
	}
	if got := f.Buffer().Stats().Reads; got != 1 {
		t.Errorf("missing-key probe read %d pages, want 1", got)
	}
}

func TestScanVisitsEveryTupleOnce(t *testing.T) {
	f := build(t, versionedWidth, 50)
	loadSequential(t, f)
	seen := map[int32]int{}
	it := f.Scan()
	for {
		_, tup, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		seen[int32(f.meta.Key.Extract(tup))]++
	}
	if len(seen) != nTuples {
		t.Fatalf("scan saw %d distinct keys, want %d", len(seen), nTuples)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("key %d seen %d times", k, c)
		}
	}
}

func TestScanCostEqualsFileSize(t *testing.T) {
	// Section 5.3: a sequential scan reads every page of the file.
	f := build(t, temporalWidth, 100)
	loadSequential(t, f)
	// Two update rounds: each adds 2 versions per tuple (temporal replace).
	for round := 0; round < 2; round++ {
		for id := int32(1); id <= nTuples; id++ {
			f.Insert(mkTuple(temporalWidth, id))
			f.Insert(mkTuple(temporalWidth, id))
		}
	}
	f.Buffer().Invalidate()
	f.Buffer().ResetStats()
	it := f.Scan()
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if got, want := int(f.Buffer().Stats().Reads), f.NumPages(); got != want {
		t.Errorf("scan read %d pages, file has %d", got, want)
	}
}

func TestChainGrowthMatchesPaperUC14(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// Figure 5: the hashed temporal relation reaches exactly 3717 pages at
	// update count 14 (129 primary; buckets of 8 grow 2 pages per update,
	// buckets of 7 grow 1.75 pages per update).
	f := build(t, temporalWidth, 100)
	loadSequential(t, f)
	for round := 0; round < 14; round++ {
		for id := int32(1); id <= nTuples; id++ {
			f.Insert(mkTuple(temporalWidth, id))
			f.Insert(mkTuple(temporalWidth, id))
		}
	}
	if got := f.NumPages(); got != 3717 {
		t.Errorf("temporal hashed file at UC 14 = %d pages, want 3717", got)
	}

	// Rollback: one new version per update; Figure 5 reports 1927 pages.
	g := build(t, versionedWidth, 100)
	loadSequential(t, g)
	for round := 0; round < 14; round++ {
		for id := int32(1); id <= nTuples; id++ {
			g.Insert(mkTuple(versionedWidth, id))
		}
	}
	if got := g.NumPages(); got != 1927 {
		t.Errorf("rollback hashed file at UC 14 = %d pages, want 1927", got)
	}
}

func TestGetUpdateDelete(t *testing.T) {
	f := build(t, versionedWidth, 100)
	rid, err := f.Insert(mkTuple(versionedWidth, 42))
	if err != nil {
		t.Fatal(err)
	}
	tup, err := f.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if f.meta.Key.Extract(tup) != 42 {
		t.Fatalf("Get returned key %d", f.meta.Key.Extract(tup))
	}
	tup[8] = 0xAA
	if err := f.Update(rid, tup); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Get(rid)
	if got[8] != 0xAA {
		t.Error("Update did not persist")
	}
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(rid); err == nil {
		t.Error("Get after Delete succeeded")
	}
}

func TestNegativeKeysHashToValidBuckets(t *testing.T) {
	f := build(t, versionedWidth, 100)
	rid, err := f.Insert(mkTuple(versionedWidth, -17))
	if err != nil {
		t.Fatal(err)
	}
	if !rid.Valid() {
		t.Fatal("invalid RID")
	}
	it := f.Probe(-17)
	_, _, ok, err := it.Next()
	if err != nil || !ok {
		t.Fatalf("probe of negative key: ok=%v err=%v", ok, err)
	}
}

func TestBuildRequiresEmptyFile(t *testing.T) {
	buf := buffer.New("h", storage.NewMem())
	if _, err := Build(buf, Meta{Width: 8, Key: key4(), Primary: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(buf, Meta{Width: 8, Key: key4(), Primary: 2}); err == nil {
		t.Error("Build on non-empty file succeeded")
	}
}

// Property: after inserting an arbitrary multiset of keys, probing any key
// yields exactly its multiplicity, and a scan yields the whole multiset.
func TestInsertProbeProperty(t *testing.T) {
	f := func(seed int64, n8 uint8, primary8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8)
		primary := int(primary8%13) + 1
		buf := buffer.New("h", storage.NewMem())
		hf, err := Build(buf, Meta{Width: 12, Key: key4(), Primary: primary})
		if err != nil {
			return false
		}
		want := map[int32]int{}
		for i := 0; i < n; i++ {
			k := int32(rng.Intn(40) - 20)
			want[k]++
			if _, err := hf.Insert(mkTuple(12, k)); err != nil {
				return false
			}
		}
		for k, c := range want {
			it := hf.Probe(int64(k))
			got := 0
			for {
				_, _, ok, err := it.Next()
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				got++
			}
			if got != c {
				return false
			}
		}
		total := 0
		it := hf.Scan()
		for {
			_, _, ok, err := it.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			total++
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBucketDistribution(t *testing.T) {
	f := build(t, versionedWidth, 100)
	// 1024 sequential ids over 129 buckets: 121 buckets of 8, 8 buckets of 7.
	counts := map[page.ID]int{}
	for id := int64(1); id <= nTuples; id++ {
		counts[f.Bucket(id)]++
	}
	n8, n7 := 0, 0
	for _, c := range counts {
		switch c {
		case 8:
			n8++
		case 7:
			n7++
		default:
			t.Fatalf("bucket with %d tuples", c)
		}
	}
	if n8 != 121 || n7 != 8 {
		t.Errorf("distribution: %d buckets of 8, %d of 7; want 121, 8", n8, n7)
	}
}
