// Package hashfile implements Ingres-style static hashing: a fixed number
// of primary pages chosen by `modify R to hash on key where fillfactor = N`,
// with an overflow chain hanging off each primary page.
//
// The bucket function is key mod P. Because every version of a tuple shares
// its key, updates lengthen the chain of that key's bucket; the benchmark's
// growth-rate analysis (Section 5.3) and the O(n^2) single-tuple update cost
// (Section 5.4) both fall directly out of this structure.
package hashfile

import (
	"fmt"

	"tdbms/internal/am"
	"tdbms/internal/buffer"
	"tdbms/internal/page"
)

// Meta describes a hash file's fixed parameters; the catalog persists it.
type Meta struct {
	Width   int    // tuple width in bytes
	Key     am.Key // key location within the tuple
	Primary int    // number of primary pages (buckets)
}

// PrimaryPages computes the primary page count Ingres's modify would choose:
// enough pages to hold ntuples at the requested fillfactor, plus one.
// fillfactor is a percentage (100 or 50 in the benchmark).
func PrimaryPages(ntuples, width, fillfactor int) int {
	perPage := page.Capacity(width) * fillfactor / 100
	if perPage < 1 {
		perPage = 1
	}
	return (ntuples+perPage-1)/perPage + 1
}

// File is a static hash file over a buffered paged file.
type File struct {
	buf  *buffer.Buffered
	meta Meta
}

// Build formats an empty buffered file with meta.Primary empty primary
// pages and returns the opened hash file. The file must be empty.
func Build(buf *buffer.Buffered, meta Meta) (*File, error) {
	if buf.NumPages() != 0 {
		return nil, fmt.Errorf("hashfile: build requires an empty file, have %d pages", buf.NumPages())
	}
	if meta.Primary < 1 {
		return nil, fmt.Errorf("hashfile: need at least one primary page")
	}
	for i := 0; i < meta.Primary; i++ {
		_, p, err := buf.Allocate()
		if err != nil {
			return nil, err
		}
		p.Format(meta.Width, page.KindData)
	}
	if err := buf.Flush(); err != nil {
		return nil, err
	}
	return &File{buf: buf, meta: meta}, nil
}

// New opens an existing hash file described by meta.
func New(buf *buffer.Buffered, meta Meta) *File {
	return &File{buf: buf, meta: meta}
}

// Buffer exposes the underlying buffered file.
func (f *File) Buffer() *buffer.Buffered { return f.buf }

// Meta returns the file's parameters.
func (f *File) Meta() Meta { return f.meta }

// NumPages reports the file size in pages (primary + overflow).
func (f *File) NumPages() int { return f.buf.NumPages() }

// Bucket returns the primary page for a key.
func (f *File) Bucket(key int64) page.ID {
	p := int64(f.meta.Primary)
	return page.ID(((key % p) + p) % p)
}

// Keyed implements am.File.
func (f *File) Keyed() bool { return true }

// Ordered implements am.File: hashing has no key order.
func (f *File) Ordered() bool { return false }

// ProbeRange implements am.File as a filtered full scan (static hashing
// cannot do better; Section 6's case for ordered structures).
func (f *File) ProbeRange(lo, hi int64) am.Iterator {
	return am.FilterRange(f.Scan(), f.meta.Key, lo, hi)
}

// Insert implements am.File: the tuple goes to the first page of its
// bucket's chain with room, extending the chain if necessary. The walk from
// the primary page is what makes repeated updates of one tuple cost O(n^2)
// pages in total (Section 5.4).
func (f *File) Insert(tup []byte) (page.RID, error) {
	if len(tup) != f.meta.Width {
		return page.NilRID, fmt.Errorf("hashfile: tuple width %d, want %d", len(tup), f.meta.Width)
	}
	id := f.Bucket(f.meta.Key.Extract(tup))
	for {
		p, err := f.buf.Fetch(id)
		if err != nil {
			return page.NilRID, err
		}
		if p.HasRoom() {
			slot, err := p.Insert(tup)
			if err != nil {
				return page.NilRID, err
			}
			f.buf.MarkDirty()
			return page.RID{Page: id, Slot: uint16(slot)}, nil
		}
		next := p.Next()
		if next == page.Nil {
			// Extend the chain: the new page's ID is known before
			// allocation, so the link can be set without re-reading.
			newID := page.ID(f.buf.NumPages())
			p.SetNext(newID)
			f.buf.MarkDirty()
			gotID, np, err := f.buf.Allocate()
			if err != nil {
				// Undo the optimistic chain link: the tail page is still
				// resident (Allocate only evicts after the file extends),
				// and leaving the link dirty would let a later flush
				// persist a pointer to a page that does not exist.
				if tail, ferr := f.buf.Fetch(id); ferr == nil {
					tail.SetNext(page.Nil)
					f.buf.MarkDirty()
				}
				return page.NilRID, err
			}
			if gotID != newID {
				return page.NilRID, fmt.Errorf("hashfile: allocated page %d, expected %d", gotID, newID)
			}
			np.Format(f.meta.Width, page.KindData)
			slot, err := np.Insert(tup)
			if err != nil {
				return page.NilRID, err
			}
			return page.RID{Page: newID, Slot: uint16(slot)}, nil
		}
		id = next
	}
}

// Get implements am.File.
func (f *File) Get(rid page.RID) ([]byte, error) {
	p, err := f.buf.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	t, err := p.Get(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(t))
	copy(out, t)
	return out, nil
}

// Update implements am.File (in place; the key must not change).
func (f *File) Update(rid page.RID, tup []byte) error {
	p, err := f.buf.Fetch(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Replace(int(rid.Slot), tup); err != nil {
		return err
	}
	f.buf.MarkDirty()
	return nil
}

// Delete implements am.File.
func (f *File) Delete(rid page.RID) error {
	p, err := f.buf.Fetch(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Delete(int(rid.Slot)); err != nil {
		return err
	}
	f.buf.MarkDirty()
	return nil
}

// Probe implements am.File: hashed access, reading only the bucket's chain.
func (f *File) Probe(key int64) am.Iterator {
	return &chainIter{f: f, cur: f.Bucket(key), filter: true, key: key}
}

// ProbeChain iterates the whole chain of key's bucket without filtering by
// key (used by the version-scan analysis and tests).
func (f *File) ProbeChain(key int64) am.Iterator {
	return &chainIter{f: f, cur: f.Bucket(key)}
}

// Scan implements am.File: every primary page followed by its chain.
func (f *File) Scan() am.Iterator {
	return &scanIter{f: f}
}

// chainIter walks one overflow chain.
type chainIter struct {
	f      *File
	cur    page.ID
	slot   int
	filter bool
	key    int64
}

// Next implements am.Iterator.
func (it *chainIter) Next() (page.RID, []byte, bool, error) {
	for it.cur != page.Nil {
		p, err := it.f.buf.Fetch(it.cur)
		if err != nil {
			return page.NilRID, nil, false, err
		}
		for it.slot < p.Slots() {
			s := it.slot
			it.slot++
			t, err := p.Get(s)
			if err == page.ErrBadSlot {
				continue
			}
			if err != nil {
				return page.NilRID, nil, false, err
			}
			if it.filter && it.f.meta.Key.Extract(t) != it.key {
				continue
			}
			out := make([]byte, len(t))
			copy(out, t)
			return page.RID{Page: it.cur, Slot: uint16(s)}, out, true, nil
		}
		it.cur = p.Next()
		it.slot = 0
	}
	return page.NilRID, nil, false, nil
}

// NextBlock implements am.BlockIterator: the remaining qualifiers of the
// chain page under the cursor, one fetch for all of them.
func (it *chainIter) NextBlock(blk *am.Block, max int) (bool, error) {
	blk.Reset()
	if max < 1 {
		max = 1
	}
	for it.cur != page.Nil {
		p, err := it.f.buf.Fetch(it.cur)
		if err != nil {
			return false, err
		}
		for it.slot < p.Slots() && blk.Len() < max {
			s := it.slot
			it.slot++
			t, err := p.Get(s)
			if err == page.ErrBadSlot {
				continue
			}
			if err != nil {
				return false, err
			}
			if it.filter && it.f.meta.Key.Extract(t) != it.key {
				continue
			}
			blk.Add(page.RID{Page: it.cur, Slot: uint16(s)}, t)
		}
		if it.slot < p.Slots() {
			return true, nil // stopped at max; cursor stays on this page
		}
		it.cur = p.Next()
		it.slot = 0
		if blk.Len() > 0 {
			return true, nil
		}
	}
	return false, nil
}

// Close implements am.Iterator, releasing the chain position.
func (it *chainIter) Close() error {
	it.cur = page.Nil
	return nil
}

// scanIter visits each primary page and its full chain.
type scanIter struct {
	f       *File
	primary int // next primary bucket to start
	cur     page.ID
	slot    int
	ahead   int
	started bool
	closed  bool
}

// SetReadahead implements am.ReadaheadHinter. Only the primary buckets are
// contiguous (pages 0..Primary-1); overflow pages are chained anywhere past
// them, so prefetch is confined to the primary region.
func (it *scanIter) SetReadahead(n int) { it.ahead = n }

// Next implements am.Iterator.
func (it *scanIter) Next() (page.RID, []byte, bool, error) {
	if it.closed {
		return page.NilRID, nil, false, nil
	}
	for {
		if !it.started {
			if it.primary >= it.f.meta.Primary {
				return page.NilRID, nil, false, nil
			}
			it.cur = page.ID(it.primary)
			it.slot = 0
			it.started = true
		}
		for it.cur != page.Nil {
			p, err := it.fetch()
			if err != nil {
				return page.NilRID, nil, false, err
			}
			for it.slot < p.Slots() {
				s := it.slot
				it.slot++
				t, err := p.Get(s)
				if err == page.ErrBadSlot {
					continue
				}
				if err != nil {
					return page.NilRID, nil, false, err
				}
				out := make([]byte, len(t))
				copy(out, t)
				return page.RID{Page: it.cur, Slot: uint16(s)}, out, true, nil
			}
			it.cur = p.Next()
			it.slot = 0
		}
		it.primary++
		it.started = false
	}
}

// fetch brings the cursor's page in, prefetching ahead within the
// contiguous primary region exactly as Next does.
func (it *scanIter) fetch() (*page.Page, error) {
	if ahead := it.ahead; ahead > 0 && int(it.cur) < it.f.meta.Primary {
		if rest := it.f.meta.Primary - int(it.cur) - 1; ahead > rest {
			ahead = rest
		}
		return it.f.buf.FetchAhead(it.cur, ahead)
	}
	return it.f.buf.Fetch(it.cur)
}

// NextBlock implements am.BlockIterator: the remaining tuples of the page
// under the cursor, one fetch for all of them.
func (it *scanIter) NextBlock(blk *am.Block, max int) (bool, error) {
	blk.Reset()
	if it.closed {
		return false, nil
	}
	if max < 1 {
		max = 1
	}
	for {
		if !it.started {
			if it.primary >= it.f.meta.Primary {
				return false, nil
			}
			it.cur = page.ID(it.primary)
			it.slot = 0
			it.started = true
		}
		for it.cur != page.Nil {
			p, err := it.fetch()
			if err != nil {
				return false, err
			}
			for it.slot < p.Slots() && blk.Len() < max {
				s := it.slot
				it.slot++
				t, err := p.Get(s)
				if err == page.ErrBadSlot {
					continue
				}
				if err != nil {
					return false, err
				}
				blk.Add(page.RID{Page: it.cur, Slot: uint16(s)}, t)
			}
			if it.slot < p.Slots() {
				return true, nil // stopped at max; cursor stays on this page
			}
			it.cur = p.Next()
			it.slot = 0
			if blk.Len() > 0 {
				return true, nil
			}
		}
		it.primary++
		it.started = false
	}
}

// Close implements am.Iterator, releasing the scan position.
func (it *scanIter) Close() error {
	it.closed = true
	return nil
}
