package hashfile

import (
	"testing"

	"tdbms/internal/am"
	"tdbms/internal/buffer"
	"tdbms/internal/faultfs"
	"tdbms/internal/storage"
)

// TestIteratorReadErrors injects a fault into the first page read and
// requires every iterator to surface it from Next — not swallow it or end
// the scan early — while still closing cleanly afterwards.
func TestIteratorReadErrors(t *testing.T) {
	mem := storage.NewMem()
	buf := buffer.New("r", mem)
	f, err := Build(buf, Meta{
		Width:   16,
		Key:     key4(),
		Primary: PrimaryPages(200, 16, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	for id := int32(1); id <= 200; id++ {
		if _, err := f.Insert(mkTuple(16, id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := buf.Flush(); err != nil {
		t.Fatal(err)
	}
	meta := f.Meta()

	cases := []struct {
		name string
		open func(*File) am.Iterator
	}{
		{"scan", func(f *File) am.Iterator { return f.Scan() }},
		{"probe", func(f *File) am.Iterator { return f.Probe(7) }},
		{"probe-chain", func(f *File) am.Iterator { return f.ProbeChain(7) }},
		{"probe-range", func(f *File) am.Iterator { return f.ProbeRange(3, 9) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched := faultfs.MustParse("r:read@1")
			fbuf := buffer.New("r", sched.Wrap("r", mem))
			it := tc.open(New(fbuf, meta))
			drainToInjectedError(t, it)
		})
	}
}

// drainToInjectedError pulls an iterator until it returns the injected
// error, failing if it ends first, then requires Close to succeed.
func drainToInjectedError(t *testing.T, it am.Iterator) {
	t.Helper()
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			if !faultfs.IsInjected(err) {
				t.Fatalf("Next returned a non-injected error: %v", err)
			}
			break
		}
		if !ok {
			t.Fatal("iterator ended without surfacing the injected read error")
		}
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close after an iterator error: %v", err)
	}
}
