package difftest

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"tdbms/internal/bench"
	"tdbms/internal/core"
	"tdbms/internal/faultfs"
	"tdbms/internal/temporal"
)

// TestChainInterleaving is the multi-writer half of the oracle: N writer
// sessions hammer the same rollback chains while M reader sessions take
// watermark-pinned snapshots of them. Each reader statement holds the
// relation's shared latch for its full scan, so every cut it sees must be
// prefix-consistent: the versions of a key are exactly seq 0..k with no
// gap, the current cut has exactly one version per key, and neither view
// ever moves backwards between a reader's successive statements. When the
// writers drain, every increment must have landed exactly once.
func TestChainInterleaving(t *testing.T) {
	db := core.MustOpen(core.Options{Now: temporal.Date(1980, 1, 1, 0, 0, 0)})
	defer db.Close()
	if _, err := db.Exec("create persistent chain (id = i4, seq = i4)\nrange of c is chain"); err != nil {
		t.Fatal(err)
	}
	const keys = 4
	for id := 1; id <= keys; id++ {
		if _, err := db.Exec(fmt.Sprintf(`append to chain (id = %d, seq = 0)`, id)); err != nil {
			t.Fatal(err)
		}
	}

	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	const rounds = 10
	var (
		wgW, wgR sync.WaitGroup
		done     atomic.Bool
		errs     = make(chan error, writers+4)
		session  = func(name string) (*core.Conn, error) {
			s := db.NewSession(name)
			_, err := s.Exec(`range of c is chain`)
			return s, err
		}
	)

	for w := 0; w < writers; w++ {
		wgW.Add(1)
		go func(w int) {
			defer wgW.Done()
			s, err := session(fmt.Sprintf("writer-%d", w))
			if err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				db.Clock().Advance(1)
				for id := 1; id <= keys; id++ {
					stmt := fmt.Sprintf(`replace c (seq = c.seq + 1) where c.id = %d`, id)
					if _, err := s.Exec(stmt); err != nil {
						errs <- fmt.Errorf("writer %d: %w", w, err)
						return
					}
				}
			}
		}(w)
	}

	// chainCut reads the full version chains in one statement (the rollback
	// default window is "as of now", so the full transaction-time extent is
	// requested explicitly) and checks the prefix invariant; it returns max
	// seq per key.
	chainCut := func(s *core.Conn) (map[int64]int64, error) {
		res, err := s.Exec(`retrieve (c.id, c.seq) as of "beginning" through "forever"`)
		if err != nil {
			return nil, err
		}
		seqs := make(map[int64]map[int64]bool, keys)
		for _, row := range res.Rows {
			id, seq := row[0].I, row[1].I
			if seqs[id] == nil {
				seqs[id] = make(map[int64]bool)
			}
			if seqs[id][seq] {
				return nil, fmt.Errorf("key %d: seq %d appears twice in one cut", id, seq)
			}
			seqs[id][seq] = true
		}
		max := make(map[int64]int64, keys)
		for id, set := range seqs {
			for s := int64(0); s < int64(len(set)); s++ {
				if !set[s] {
					return nil, fmt.Errorf("key %d: chain cut has %d versions but is missing seq %d", id, len(set), s)
				}
			}
			max[id] = int64(len(set)) - 1
		}
		return max, nil
	}
	// currentCut reads the as-of-now cut: exactly one version per key.
	currentCut := func(s *core.Conn) (map[int64]int64, error) {
		res, err := s.Exec(`retrieve (c.id, c.seq) as of "now"`)
		if err != nil {
			return nil, err
		}
		cur := make(map[int64]int64, keys)
		for _, row := range res.Rows {
			id, seq := row[0].I, row[1].I
			if prev, dup := cur[id]; dup {
				return nil, fmt.Errorf("key %d: two current versions (seq %d and %d)", id, prev, seq)
			}
			cur[id] = seq
		}
		if len(cur) != keys {
			return nil, fmt.Errorf("current cut has %d keys, want %d", len(cur), keys)
		}
		return cur, nil
	}

	reader := func(name string, cut func(*core.Conn) (map[int64]int64, error)) {
		defer wgR.Done()
		s, err := session(name)
		if err != nil {
			errs <- err
			return
		}
		last := make(map[int64]int64)
		observe := func() bool {
			seen, err := cut(s)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
				return false
			}
			for id, seq := range seen {
				if seq < last[id] {
					errs <- fmt.Errorf("%s: key %d went backwards: %d after %d", name, id, seq, last[id])
					return false
				}
				last[id] = seq
			}
			return true
		}
		for !done.Load() {
			if !observe() {
				return
			}
		}
		observe() // one final cut after the writers drain
	}
	for m := 0; m < 2; m++ {
		wgR.Add(2)
		go reader(fmt.Sprintf("chain-reader-%d", m), chainCut)
		go reader(fmt.Sprintf("current-reader-%d", m), currentCut)
	}

	wgW.Wait()
	done.Store(true)
	wgR.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	final, err := currentCut(db.DefaultSession())
	if err != nil {
		t.Fatal(err)
	}
	want := int64(writers * rounds)
	for id, seq := range final {
		if seq != want {
			t.Errorf("key %d: final seq %d, want %d (lost or duplicated update)", id, seq, want)
		}
	}
	if max, err := chainCut(db.DefaultSession()); err != nil {
		t.Error(err)
	} else {
		for id, m := range max {
			if m != want {
				t.Errorf("key %d: chain max seq %d, want %d", id, m, want)
			}
		}
	}
	if err := db.CheckIntegrity(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultMatrixConcurrentWriters combines the two oracles: GOMAXPROCS
// writer sessions update disjoint chains of the disk-backed temporal
// benchmark database while a random fault schedule sabotages its files.
// Failed statements must surface wrapped injected errors, roll their
// chain back whole, and leave the exact success count applied; the
// answers must survive close and clean reopen.
func TestFaultMatrixConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	b, err := bench.BuildOpts(bench.Temporal, 100, core.Options{Dir: dir})
	if err != nil {
		t.Fatalf("clean build: %v", err)
	}
	if err := b.Inner.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}

	sched := faultfs.Random(7, []string{"temporal_h", "temporal_i"}, 40)
	t.Logf("schedule: %s", sched.String())
	db := reopenRetry(t, dir, sched)
	base := seqsRetry(t, db, "h")

	writers := runtime.GOMAXPROCS(0)
	if writers < 2 {
		writers = 2
	}
	ids := make([]int64, 0, len(base))
	for id := range base {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) < writers {
		writers = len(ids)
	}

	const rounds = 4
	applied := make([]int64, writers)
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession(fmt.Sprintf("fault-writer-%d", w))
			if _, err := s.Exec(`range of h is temporal_h`); err != nil && !faultfs.IsInjected(err) {
				errs <- err
				return
			}
			stmt := fmt.Sprintf(`replace h (seq = h.seq + 1) where h.id = %d`, ids[w])
			for r := 0; r < rounds; r++ {
				db.Clock().Advance(1)
				for attempt := 0; ; attempt++ {
					_, err := s.Exec(stmt)
					if err == nil {
						applied[w]++
						break
					}
					if !faultfs.IsInjected(err) {
						errs <- fmt.Errorf("writer %d: non-injected failure: %w", w, err)
						return
					}
					if attempt >= maxAbsorbed {
						errs <- fmt.Errorf("writer %d: still failing after %d retries: %w", w, attempt, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	integrityRetry(t, db)
	live := seqsRetry(t, db, "h")
	for w := 0; w < writers; w++ {
		id := ids[w]
		if got, want := live[id], base[id]+applied[w]; got != want {
			t.Errorf("id %d: live seq %d, want %d (%d applied rounds)", id, got, want, applied[w])
		}
	}

	closed := false
	for attempt := 0; attempt < maxAbsorbed; attempt++ {
		err := db.Close()
		if err == nil {
			closed = true
			break
		}
		if !faultfs.IsInjected(err) {
			t.Fatalf("close failed with a non-injected error: %v", err)
		}
		t.Logf("close failed as scheduled: %v", err)
	}
	if !closed {
		t.Fatalf("close still failing after %d retries", maxAbsorbed)
	}

	db2, err := Reopen(dir, bench.Temporal, nil)
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after reopen: %v", err)
	}
	disk := mustSeqs(t, db2, "h")
	for w := 0; w < writers; w++ {
		id := ids[w]
		if got, want := disk[id], base[id]+applied[w]; got != want {
			t.Errorf("id %d: disk seq %d, want %d", id, got, want)
		}
	}
}
