package difftest

import (
	"fmt"
	"testing"

	"tdbms/internal/bench"
	"tdbms/internal/core"
	"tdbms/internal/faultfs"
)

// maxAbsorbed bounds how many injected faults any retry loop will tolerate
// before declaring the schedule runaway (every rule is one-shot, so a loop
// that keeps seeing injected errors past this is a bug).
const maxAbsorbed = 16

// faultScenario is one cell of the fault matrix: a schedule plus the phase
// it is expected to sabotage. Whatever the phase, the invariants are the
// same — wrapped injected errors only, an intact database, and identical
// answers before close and after a clean reopen.
type faultScenario struct {
	name  string
	sched func() *faultfs.Schedule
	phase string // "query", "update", or "close"
}

// TestFaultMatrix drives the crash-consistency half of the oracle. For each
// scenario it builds a clean disk-backed temporal benchmark database (one
// update round, closed so the clock persists), reopens it with the fault
// schedule spliced under every relation file, runs the sabotaged phase, and
// asserts:
//
//   - every failure observed wraps faultfs.ErrInjected — no panics, no
//     unwrapped I/O errors;
//   - CheckIntegrity holds on the live database after the fault;
//   - version chains are per-chain atomic: every current seq is either the
//     pre-fault value or that value plus one, never a torn in-between;
//   - after Close (retried or, for sync faults, abandoned as a crash) and a
//     clean reopen, CheckIntegrity holds and the twelve benchmark queries
//     return byte-identical tuples to the pre-close snapshot.
func TestFaultMatrix(t *testing.T) {
	rels := []string{"temporal_h", "temporal_i"}
	scenarios := []faultScenario{
		{"read", func() *faultfs.Schedule { return faultfs.MustParse("temporal_h:read@3") }, "query"},
		{"write-fail", func() *faultfs.Schedule { return faultfs.MustParse("temporal_h:write@5:fail") }, "update"},
		{"write-torn", func() *faultfs.Schedule { return faultfs.MustParse("temporal_h:write@7:torn") }, "update"},
		{"write-short", func() *faultfs.Schedule { return faultfs.MustParse("temporal_i:write@4:short") }, "update"},
		{"alloc-enospc", func() *faultfs.Schedule { return faultfs.MustParse("temporal_h:alloc@1:enospc") }, "update"},
		{"sync-close", func() *faultfs.Schedule { return faultfs.MustParse("temporal_h:sync@1") }, "close"},
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		scenarios = append(scenarios, faultScenario{
			name:  fmt.Sprintf("random-%d", seed),
			sched: func() *faultfs.Schedule { return faultfs.Random(seed, rels, 40) },
			phase: "update",
		})
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			runFaultScenario(t, sc)
		})
	}
}

func runFaultScenario(t *testing.T, sc faultScenario) {
	dir := t.TempDir()

	// Phase 0: build the database clean — no faults while establishing the
	// ground truth — and close it so the catalog and clock persist.
	b, err := bench.BuildOpts(bench.Temporal, 100, core.Options{Dir: dir})
	if err != nil {
		t.Fatalf("clean build: %v", err)
	}
	if err := b.Update(); err != nil {
		t.Fatalf("clean update: %v", err)
	}
	if err := b.Inner.Close(); err != nil {
		t.Fatalf("clean close: %v", err)
	}

	// Phase 1: reopen with the schedule under every file. The load itself
	// reads pages (index rebuild scans), so early read faults may fire here;
	// they must surface as wrapped injected errors and a retry must succeed
	// because every rule is one-shot.
	sched := sc.sched()
	t.Logf("schedule: %s", sched.String())
	db := reopenRetry(t, dir, sched)
	baseH := seqsRetry(t, db, "h")
	baseI := seqsRetry(t, db, "i")
	if len(baseH) == 0 || len(baseI) == 0 {
		t.Fatalf("empty baseline: %d current h rows, %d current i rows", len(baseH), len(baseI))
	}

	// Phase 2: the sabotaged phase.
	switch sc.phase {
	case "query":
		if _, absorbed, err := SnapshotRetry(db, bench.Temporal, maxAbsorbed); err != nil {
			t.Fatalf("query phase: %v", err)
		} else {
			t.Logf("query phase absorbed %d injected faults", absorbed)
		}
	case "update":
		if err := updateRound(db); err != nil {
			if !faultfs.IsInjected(err) {
				t.Fatalf("update failed with a non-injected error: %v", err)
			}
			t.Logf("update failed as scheduled: %v", err)
		}
	case "close":
		// The fault waits for Close below.
	default:
		t.Fatalf("unknown phase %q", sc.phase)
	}

	// The live database must be intact and per-chain atomic regardless of
	// where the fault landed.
	integrityRetry(t, db)
	checkChains(t, "h", seqsRetry(t, db, "h"), baseH)
	checkChains(t, "i", seqsRetry(t, db, "i"), baseI)

	pre, absorbed, err := SnapshotRetry(db, bench.Temporal, maxAbsorbed)
	if err != nil {
		t.Fatalf("pre-close snapshot: %v", err)
	}
	if absorbed > 0 {
		t.Logf("pre-close snapshot absorbed %d injected faults", absorbed)
	}

	// Phase 3: close. A write fault here fires inside the checkpoint,
	// before any file handle is released, and the frame stays dirty — so
	// retrying Close repairs it. A sync fault fires after the checkpoint,
	// while handles are being released; retrying would double-close, so it
	// is treated as a crash: abandon the handle (the checkpoint already
	// made everything durable) and recover on reopen.
	closed := false
	for attempt := 0; attempt < maxAbsorbed; attempt++ {
		err := db.Close()
		if err == nil {
			closed = true
			break
		}
		if !faultfs.IsInjected(err) {
			t.Fatalf("close failed with a non-injected error: %v", err)
		}
		t.Logf("close failed as scheduled: %v", err)
		if sc.phase == "close" {
			break // crash semantics: abandon, recover on reopen
		}
	}
	if !closed && sc.phase != "close" {
		t.Fatalf("close still failing after %d retries", maxAbsorbed)
	}

	// Phase 4: clean reopen. No faults this time; the persisted state must
	// be intact and answer-identical to the live pre-close snapshot.
	db2, err := Reopen(dir, bench.Temporal, nil)
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	defer db2.Close()
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after reopen: %v", err)
	}
	checkChains(t, "h", mustSeqs(t, db2, "h"), baseH)
	checkChains(t, "i", mustSeqs(t, db2, "i"), baseI)
	post, err := Snapshot(db2, bench.Temporal)
	if err != nil {
		t.Fatalf("post-reopen snapshot: %v", err)
	}
	for id, want := range pre {
		if got := post[id]; got != want {
			t.Errorf("%s: answers diverge across close/reopen\n live: %q\n disk: %q", id, want, got)
		}
	}
	if len(post) != len(pre) {
		t.Errorf("snapshot size changed across reopen: %d live, %d disk", len(pre), len(post))
	}

	// The batching axis must hold on the recovered database too: the
	// tuple-at-a-time executor has to read the exact same answers out of
	// whatever state the fault left behind.
	db2.DefaultSession().SetBatchSize(-1)
	tpost, err := Snapshot(db2, bench.Temporal)
	db2.DefaultSession().ClearBatchSize()
	if err != nil {
		t.Fatalf("post-reopen tuple-mode snapshot: %v", err)
	}
	for id, want := range post {
		if got := tpost[id]; got != want {
			t.Errorf("%s: tuple and batch executors diverge after recovery\nbatch: %q\ntuple: %q", id, want, got)
		}
	}
}

// updateRound mirrors bench.DB.Update on a reopened database: advance an
// hour, bump every tuple's seq in both relations, advance a minute. It stops
// at the first error, which is how a failed statement leaves earlier chains
// committed and the failing chain rolled back.
func updateRound(db *core.Database) error {
	db.Clock().Advance(3600)
	for _, v := range []string{"h", "i"} {
		if _, err := db.Exec(fmt.Sprintf(`replace %s (seq = %s.seq + 1)`, v, v)); err != nil {
			return err
		}
	}
	db.Clock().Advance(60)
	return nil
}

// checkChains asserts per-chain atomicity: the faulted update either fully
// applied or fully rolled back for each key — every current seq is base or
// base+1, no key vanished, no key appeared.
func checkChains(t *testing.T, v string, got, base map[int64]int64) {
	t.Helper()
	if len(got) != len(base) {
		t.Errorf("%s: current-version count changed: %d, was %d", v, len(got), len(base))
	}
	for id, seq := range got {
		b, ok := base[id]
		if !ok {
			t.Errorf("%s: id %d appeared out of nowhere (seq %d)", v, id, seq)
			continue
		}
		if seq != b && seq != b+1 {
			t.Errorf("%s: id %d has torn seq %d (base %d)", v, id, seq, b)
		}
	}
}

// reopenRetry opens the benchmark database with the schedule spliced in,
// retrying while the open itself trips one-shot injected faults.
func reopenRetry(t *testing.T, dir string, sched *faultfs.Schedule) *core.Database {
	t.Helper()
	for attempt := 0; ; attempt++ {
		db, err := Reopen(dir, bench.Temporal, sched)
		if err == nil {
			return db
		}
		if !faultfs.IsInjected(err) {
			t.Fatalf("reopen failed with a non-injected error: %v", err)
		}
		if attempt >= maxAbsorbed {
			t.Fatalf("reopen still failing after %d retries: %v", attempt, err)
		}
		t.Logf("reopen failed as scheduled, retrying: %v", err)
	}
}

// seqsRetry is CurrentSeqs with injected-fault retry.
func seqsRetry(t *testing.T, x Execer, v string) map[int64]int64 {
	t.Helper()
	for attempt := 0; ; attempt++ {
		m, err := CurrentSeqs(x, bench.Temporal, v)
		if err == nil {
			return m
		}
		if !faultfs.IsInjected(err) {
			t.Fatalf("current seqs of %s: %v", v, err)
		}
		if attempt >= maxAbsorbed {
			t.Fatalf("current seqs of %s still failing after %d retries: %v", v, attempt, err)
		}
	}
}

// mustSeqs is CurrentSeqs on a fault-free database.
func mustSeqs(t *testing.T, x Execer, v string) map[int64]int64 {
	t.Helper()
	m, err := CurrentSeqs(x, bench.Temporal, v)
	if err != nil {
		t.Fatalf("current seqs of %s: %v", v, err)
	}
	return m
}

// integrityRetry is CheckIntegrity with injected-fault retry (the check
// scans every page, so pending read faults can fire inside it).
func integrityRetry(t *testing.T, db *core.Database) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := db.CheckIntegrity()
		if err == nil {
			return
		}
		if !faultfs.IsInjected(err) {
			t.Fatalf("integrity check: %v", err)
		}
		if attempt >= maxAbsorbed {
			t.Fatalf("integrity check still failing after %d retries: %v", attempt, err)
		}
	}
}
