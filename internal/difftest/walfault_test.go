package difftest

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"tdbms/internal/bench"
	"tdbms/internal/core"
	"tdbms/internal/faultfs"
	"tdbms/internal/storage"
	"tdbms/internal/wal"
)

// The WAL crash matrix. A benchmark database is built with logging on,
// closed cleanly (emptying the log), reopened, and driven through a seeded
// two-statement schedule — then abandoned without Close, exactly the crash
// model: completed writes are visible, nothing else survives. The on-disk
// bytes at that instant are the crash image; every scenario below restores
// it into a fresh directory and recovers from a sabotaged variant of it.
//
// The oracle is threefold after every recovery: CheckIntegrity passes, each
// version chain's seq moved atomically per statement (all of a statement's
// chains at base+1 or all at base — never split), and the twelve-query
// snapshot is byte-identical to the matching no-fault reference state.

// walTouched is how many chains each schedule statement updates; the ids
// 1..walTouched of each relation must move together or not at all.
const walTouched = 8

// walMatrixRow is one recovery outcome, serialized to WAL_MATRIX_OUT for
// the CI artifact.
type walMatrixRow struct {
	Scenario string `json:"scenario"`
	Cut      int64  `json:"cut,omitempty"`
	State    string `json:"state"` // which reference the recovery landed on
}

type walMatrix struct {
	mu   sync.Mutex
	rows []walMatrixRow
}

func (m *walMatrix) add(r walMatrixRow) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rows = append(m.rows, r)
}

// writeOut dumps the collected rows as JSON when WAL_MATRIX_OUT names a
// file — the CI crash-matrix step uploads it as a build artifact.
func (m *walMatrix) writeOut(t *testing.T) {
	t.Helper()
	path := os.Getenv("WAL_MATRIX_OUT")
	if path == "" {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	data, err := json.MarshalIndent(struct {
		Rows []walMatrixRow `json:"rows"`
	}{m.rows}, "", "  ")
	if err != nil {
		t.Fatalf("marshal matrix: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	t.Logf("wrote %d matrix rows to %s", len(m.rows), path)
}

// dirState reads every regular file under dir into memory — the crash image
// of an abandoned process.
func dirState(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read dir: %v", err)
	}
	state := make(map[string][]byte, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("read %s: %v", e.Name(), err)
		}
		state[e.Name()] = data
	}
	return state
}

// restoreState materializes a crash image into a fresh directory, with the
// log truncated to cut bytes (cut < 0 keeps the whole log).
func restoreState(t *testing.T, state map[string][]byte, cut int64) string {
	t.Helper()
	dir := t.TempDir()
	for name, data := range state {
		if name == "wal.log" && cut >= 0 && cut < int64(len(data)) {
			data = data[:cut]
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatalf("restore %s: %v", name, err)
		}
	}
	return dir
}

// walBoundaries decodes a saved log image and returns every record's start
// offset plus the valid tail.
func walBoundaries(t *testing.T, logBytes []byte) (bounds []int64, valid int64) {
	t.Helper()
	mem := storage.NewMemLog()
	if _, err := mem.WriteAt(logBytes, 0); err != nil {
		t.Fatalf("seed mem log: %v", err)
	}
	valid, err := wal.NewManager(mem).Scan(0, func(r *wal.Record) error {
		bounds = append(bounds, r.LSN)
		return nil
	})
	if err != nil {
		t.Fatalf("scan saved log: %v", err)
	}
	return bounds, valid
}

// bumpedClass classifies a recovered relation against its base seqs:
// "none" (the statement never committed) or "all" (it fully applied). A
// split within ids 1..walTouched, any movement outside them, or a changed
// chain count fails the test — that is precisely a torn statement.
func bumpedClass(t *testing.T, label string, base, got map[int64]int64) string {
	t.Helper()
	if len(got) != len(base) {
		t.Fatalf("%s: current-version count changed: %d, was %d", label, len(got), len(base))
	}
	bumped, kept := 0, 0
	for id, seq := range got {
		b, ok := base[id]
		if !ok {
			t.Fatalf("%s: id %d appeared out of nowhere (seq %d)", label, id, seq)
		}
		switch {
		case id > walTouched:
			if seq != b {
				t.Fatalf("%s: untouched id %d moved from %d to %d", label, id, b, seq)
			}
		case seq == b:
			kept++
		case seq == b+1:
			bumped++
		default:
			t.Fatalf("%s: id %d has torn seq %d (base %d)", label, id, seq, b)
		}
	}
	switch {
	case bumped == walTouched && kept == 0:
		return "all"
	case bumped == 0 && kept == walTouched:
		return "none"
	}
	t.Fatalf("%s: statement tore: %d chains bumped, %d kept", label, bumped, kept)
	return ""
}

// sameSnap asserts two snapshots are byte-identical query by query.
func sameSnap(t *testing.T, label string, got, want map[string]string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: snapshot has %d queries, want %d", label, len(got), len(want))
	}
	for id, g := range got {
		if w, ok := want[id]; !ok || g != w {
			t.Fatalf("%s: %s diverged after recovery", label, id)
		}
	}
}

// mustSnap is Snapshot on a fault-free database.
func mustSnap(t *testing.T, x Execer) map[string]string {
	t.Helper()
	snap, err := Snapshot(x, bench.Temporal)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	return snap
}

// mustExec runs one statement on a fault-free database.
func mustExec(t *testing.T, x Execer, src string) {
	t.Helper()
	if _, err := x.Exec(src); err != nil {
		t.Fatalf("%s: %v", src, err)
	}
}

// walCrashImage holds the seeded schedule's crash image and the reference
// states recovery may legally land on.
type walCrashImage struct {
	state  map[string][]byte
	ref0   map[string]string // before the schedule
	refH   map[string]string // after statement 1 (replace h)
	ref2   map[string]string // after statement 2 (replace i) — full recovery
	baseH  map[int64]int64
	baseI  map[int64]int64
	bounds []int64
	valid  int64
}

// buildWALCrashImage builds the WAL benchmark database, runs the seeded
// two-statement schedule, and captures the crash image plus references.
func buildWALCrashImage(t *testing.T) *walCrashImage {
	t.Helper()
	dir := t.TempDir()
	b, err := bench.BuildOpts(bench.Temporal, 100, core.Options{Dir: dir, WAL: true})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := b.Inner.Close(); err != nil {
		t.Fatalf("close after build: %v", err)
	}
	db, err := ReopenWAL(dir, bench.Temporal, nil, true)
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	img := &walCrashImage{}
	img.ref0 = mustSnap(t, db)
	img.baseH = mustSeqs(t, db, "h")
	img.baseI = mustSeqs(t, db, "i")
	db.Clock().Advance(3600)
	mustExec(t, db, fmt.Sprintf(`replace h (seq = h.seq + 1) where h.id <= %d`, walTouched))
	img.refH = mustSnap(t, db)
	mustExec(t, db, fmt.Sprintf(`replace i (seq = i.seq + 1) where i.id <= %d`, walTouched))
	img.ref2 = mustSnap(t, db)
	// Crash: abandon db without Close. The files as they stand — data,
	// catalog, log — are the image every scenario recovers from.
	img.state = dirState(t, dir)
	img.bounds, img.valid = walBoundaries(t, img.state["wal.log"])
	if img.valid != int64(len(img.state["wal.log"])) {
		t.Fatalf("live log has a torn tail: valid %d of %d", img.valid, len(img.state["wal.log"]))
	}
	if len(img.bounds) < 6 {
		t.Fatalf("seeded schedule produced only %d records; the sweep needs more boundaries", len(img.bounds))
	}
	return img
}

// expectRef maps the recovered statement classes to the reference snapshot
// recovery must reproduce; a committed i without a committed h violates log
// order and fails.
func (img *walCrashImage) expectRef(t *testing.T, label, hClass, iClass string) map[string]string {
	t.Helper()
	switch {
	case hClass == "none" && iClass == "none":
		return img.ref0
	case hClass == "all" && iClass == "none":
		return img.refH
	case hClass == "all" && iClass == "all":
		return img.ref2
	}
	t.Fatalf("%s: statement 2 recovered without statement 1 (h=%s, i=%s)", label, hClass, iClass)
	return nil
}

// checkRecovered opens a restored directory fault-free and runs the full
// oracle; it returns the state label the recovery landed on.
func (img *walCrashImage) checkRecovered(t *testing.T, label, dir string) string {
	t.Helper()
	db, err := ReopenWAL(dir, bench.Temporal, nil, true)
	if err != nil {
		t.Fatalf("%s: recovery reopen: %v", label, err)
	}
	defer func() {
		if err := db.Close(); err != nil {
			t.Errorf("%s: close after recovery: %v", label, err)
		}
	}()
	if err := db.CheckIntegrity(); err != nil {
		t.Fatalf("%s: integrity after recovery: %v", label, err)
	}
	hClass := bumpedClass(t, label+"/h", img.baseH, mustSeqs(t, db, "h"))
	iClass := bumpedClass(t, label+"/i", img.baseI, mustSeqs(t, db, "i"))
	want := img.expectRef(t, label, hClass, iClass)
	sameSnap(t, label, mustSnap(t, db), want)
	return fmt.Sprintf("h=%s,i=%s", hClass, iClass)
}

func TestWALFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("the WAL crash matrix is the long tier")
	}
	img := buildWALCrashImage(t)
	matrix := &walMatrix{}
	defer matrix.writeOut(t)

	// Torn tails at every record boundary of the schedule, plus a tear one
	// byte into each frame (a mid-record torn append). Every cut must
	// recover to one of the three reference states.
	t.Run("torn-tail", func(t *testing.T) {
		cuts := make([]int64, 0, 2*len(img.bounds)+1)
		for _, b := range img.bounds {
			cuts = append(cuts, b, b+1)
		}
		cuts = append(cuts, img.valid)
		for _, cut := range cuts {
			label := fmt.Sprintf("cut@%d", cut)
			dir := restoreState(t, img.state, cut)
			state := img.checkRecovered(t, label, dir)
			matrix.add(walMatrixRow{Scenario: "torn-tail", Cut: cut, State: state})
			if cut == img.valid && state != "h=all,i=all" {
				t.Fatalf("full log recovered to %s, want both statements", state)
			}
			if cut == 0 && state != "h=none,i=none" {
				t.Fatalf("empty log recovered to %s, want the checkpoint state", state)
			}
		}
	})

	// Faults injected into recovery itself: the replay's page writes and the
	// log read both fail mid-recovery. Recovery never truncates the log, so
	// a second, clean attempt over the half-replayed files must still land
	// on full recovery — replay is idempotent.
	t.Run("mid-recovery-fault", func(t *testing.T) {
		for _, spec := range []string{
			"temporal_h:write@1:torn",
			"temporal_h:write@2:fail",
			"temporal_i:write@1:short",
			"wal:read@1",
		} {
			dir := restoreState(t, img.state, -1)
			sched := faultfs.MustParse(spec)
			if db, err := ReopenWAL(dir, bench.Temporal, sched, true); err == nil {
				_ = db.Close()
				t.Fatalf("%s: recovery succeeded with the fault armed", spec)
			} else if !faultfs.IsInjected(err) {
				t.Fatalf("%s: recovery failed with a non-injected error: %v", spec, err)
			}
			state := img.checkRecovered(t, spec+"/retry", dir)
			if state != "h=all,i=all" {
				t.Fatalf("%s: retried recovery landed on %s, want full", spec, state)
			}
			matrix.add(walMatrixRow{Scenario: "mid-recovery " + spec, State: state})
		}
	})

	// Crash again immediately after a successful recovery: the second open
	// must land on the same state — recovery leaves the directory as good as
	// a clean checkpoint.
	t.Run("double-crash", func(t *testing.T) {
		dir := restoreState(t, img.state, -1)
		db, err := ReopenWAL(dir, bench.Temporal, nil, true)
		if err != nil {
			t.Fatalf("first recovery: %v", err)
		}
		sameSnap(t, "first recovery", mustSnap(t, db), img.ref2)
		// Abandon db without Close: the second crash.
		state := img.checkRecovered(t, "second recovery", dir)
		if state != "h=all,i=all" {
			t.Fatalf("second recovery landed on %s, want full", state)
		}
		matrix.add(walMatrixRow{Scenario: "double-crash", State: state})
	})

	// A sync fault during Close. Without a log this is the one scenario the
	// engine cannot absorb (a failed close is a crash); with the log the
	// convention holds cleanly — abandon the handle and reopen: every
	// committed statement, including ones run after the recovery, survives.
	t.Run("sync-close", func(t *testing.T) {
		dir := restoreState(t, img.state, -1)
		sched := faultfs.MustParse("wal:sync@1")
		db, err := core.Open(core.Options{
			Dir: dir, WAL: true, WALSyncPolicy: core.WALSyncCheckpoint,
			WrapFile: sched.Wrap, WrapLog: sched.WrapLog,
		})
		if err != nil {
			t.Fatalf("recovery reopen: %v", err)
		}
		mustExec(t, db, "range of h is temporal_h\nrange of i is temporal_i")
		mustExec(t, db, fmt.Sprintf(`replace h (seq = h.seq + 1) where h.id = %d`, walTouched+1))
		ref3 := mustSnap(t, db)
		seqs3 := mustSeqs(t, db, "h")
		err = db.Close()
		if err == nil {
			t.Fatalf("close succeeded with the sync fault armed")
		}
		if !faultfs.IsInjected(err) {
			t.Fatalf("close failed with a non-injected error: %v", err)
		}
		// The failed Close is a crash: abandon the handle and recover.
		db2, err := ReopenWAL(dir, bench.Temporal, nil, true)
		if err != nil {
			t.Fatalf("reopen after failed close: %v", err)
		}
		defer func() {
			if err := db2.Close(); err != nil {
				t.Errorf("final close: %v", err)
			}
		}()
		if err := db2.CheckIntegrity(); err != nil {
			t.Fatalf("integrity after failed close: %v", err)
		}
		sameSnap(t, "sync-close", mustSnap(t, db2), ref3)
		got := mustSeqs(t, db2, "h")
		for id, want := range seqs3 {
			if got[id] != want {
				t.Fatalf("sync-close: id %d recovered seq %d, want %d", id, got[id], want)
			}
		}
		matrix.add(walMatrixRow{Scenario: "sync-close", State: "committed"})
	})
}
