// Package difftest is the engine's differential oracle. It executes the
// twelve Figure 4 benchmark queries across the full configuration matrix —
// four database types × access methods (the paper's hash/isam pair, B-tree,
// heap) × buffer policies (the single-frame measurement policy and a
// 32-frame pool with readahead) × execution paths (the database's default
// session and explicit concurrent sessions) × bench worker counts — and
// requires byte-identical result tuples from every cell. The same harness
// drives the fault matrix: deterministic faultfs schedules sabotage reads,
// writes, allocations, and syncs mid-statement, and the oracle requires a
// wrapped error (never a panic), an intact database under CheckIntegrity,
// and byte-identical answers before close and after reopen.
//
// The package is test infrastructure. Importing it (or faultfs) from
// production code is forbidden by tdbvet's faultfs check; the harness lives
// in a non-test file only so its helpers are documented and vetted.
package difftest

import (
	"fmt"
	"sort"
	"strings"

	"tdbms/internal/bench"
	"tdbms/internal/core"
	"tdbms/internal/faultfs"
	"tdbms/internal/tuple"
)

// Execer is the common query surface of core.Database and core.Conn.
type Execer interface {
	Exec(src string) (*core.Result, error)
}

// Methods is the access-method axis of the matrix. "paper" keeps Figure 3's
// organization (H hashed, I under ISAM); the others re-organize both
// relations, so updates and queries run against the method under test.
var Methods = []string{"paper", "btree", "heap"}

// Canon renders result rows in a canonical, order-independent form: each
// row's values printed and joined with "|", rows sorted. Two executions
// returning the same multiset of tuples canonicalize to identical strings
// regardless of scan order.
func Canon(rows [][]tuple.Value) string {
	lines := make([]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		lines[i] = strings.Join(cells, "|")
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// JoinQueries are the benchmark queries that join both relations — the
// quadratic-cost cells of an unindexed (heap) configuration.
var JoinQueries = map[string]bool{"Q09": true, "Q10": true, "Q11": true, "Q12": true}

// Snapshot runs every applicable benchmark query for type t on x and
// returns the canonical results keyed by query ID.
func Snapshot(x Execer, t bench.DBType) (map[string]string, error) {
	return SnapshotFiltered(x, t, nil)
}

// SnapshotFiltered is Snapshot restricted to queries for which skip returns
// false (nil skips nothing).
func SnapshotFiltered(x Execer, t bench.DBType, skip func(id string) bool) (map[string]string, error) {
	out := make(map[string]string)
	for _, q := range bench.Queries(t) {
		if q.Text == "" || (skip != nil && skip(q.ID)) {
			continue
		}
		res, err := x.Exec(q.Text)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", q.ID, err)
		}
		out[q.ID] = Canon(res.Rows)
	}
	return out, nil
}

// SnapshotRetry is Snapshot, retrying each query while it fails with an
// injected fault — the schedules are one-shot, so a bounded number of
// retries must drain them. It returns the snapshot plus how many injected
// errors were absorbed; any other error is fatal.
func SnapshotRetry(x Execer, t bench.DBType, maxFaults int) (map[string]string, int, error) {
	out := make(map[string]string)
	absorbed := 0
	for _, q := range bench.Queries(t) {
		if q.Text == "" {
			continue
		}
		for {
			res, err := x.Exec(q.Text)
			if err == nil {
				out[q.ID] = Canon(res.Rows)
				break
			}
			if !faultfs.IsInjected(err) {
				return nil, absorbed, fmt.Errorf("%s: %w", q.ID, err)
			}
			absorbed++
			if absorbed > maxFaults {
				return nil, absorbed, fmt.Errorf("%s: more injected faults than scheduled: %w", q.ID, err)
			}
		}
	}
	return out, absorbed, nil
}

// BuildMethod builds one benchmark database with the given core options,
// re-organizes both relations to the access method, then applies uc uniform
// update rounds — so version-chain maintenance itself runs against the
// method under test.
func BuildMethod(t bench.DBType, method string, uc int, opts core.Options) (*bench.DB, error) {
	b, err := bench.BuildOpts(t, 100, opts)
	if err != nil {
		return nil, err
	}
	switch method {
	case "paper":
	case "btree":
		for _, rel := range []string{b.H, b.I} {
			if _, err := b.Inner.Exec(fmt.Sprintf("modify %s to btree on id", rel)); err != nil {
				return nil, err
			}
		}
	case "heap":
		for _, rel := range []string{b.H, b.I} {
			if _, err := b.Inner.Exec(fmt.Sprintf("modify %s to heap", rel)); err != nil {
				return nil, err
			}
		}
	default:
		return nil, fmt.Errorf("difftest: unknown method %q", method)
	}
	for k := 0; k < uc; k++ {
		if err := b.Update(); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// SessionFor opens a named session on b's engine with the benchmark range
// variables bound; frames > 0 applies a pooled buffer policy to it.
func SessionFor(b *bench.DB, name string, frames, ahead int) (*core.Conn, error) {
	c := b.Inner.NewSession(name)
	if frames > 0 {
		c.SetBufferPolicy(frames, ahead)
	}
	ranges := fmt.Sprintf("range of h is %s\nrange of i is %s", b.H, b.I)
	if _, err := c.Exec(ranges); err != nil {
		return nil, err
	}
	return c, nil
}

// Reopen opens the disk-backed benchmark database at dir, optionally
// splicing a fault schedule under every file, and rebinds the benchmark
// range variables on the default session.
func Reopen(dir string, t bench.DBType, sched *faultfs.Schedule) (*core.Database, error) {
	return ReopenWAL(dir, t, sched, false)
}

// ReopenWAL is Reopen with write-ahead logging enabled: recovery replays
// the log before the relations reattach, and the schedule — when given —
// also wraps the log file itself, so faults can tear its tail or sabotage
// the replay.
func ReopenWAL(dir string, t bench.DBType, sched *faultfs.Schedule, wal bool) (*core.Database, error) {
	opts := core.Options{Dir: dir, WAL: wal}
	if sched != nil {
		opts.WrapFile = sched.Wrap
		opts.WrapLog = sched.WrapLog
	}
	db, err := core.Open(opts)
	if err != nil {
		return nil, err
	}
	ranges := fmt.Sprintf("range of h is %s_h\nrange of i is %s_i", t, t)
	if _, err := db.Exec(ranges); err != nil {
		_ = db.Close() // already failing; the range error wins
		return nil, err
	}
	return db, nil
}

// CurrentSeqs maps id to seq over the current versions of the relation
// bound to variable v, using the type's currency idiom.
func CurrentSeqs(x Execer, t bench.DBType, v string) (map[int64]int64, error) {
	cur := ""
	switch t {
	case bench.Static:
	case bench.Rollback:
		cur = ` as of "now"`
	default:
		cur = ` when ` + v + ` overlap "now"`
	}
	res, err := x.Exec(fmt.Sprintf(`retrieve (%s.id, %s.seq)%s`, v, v, cur))
	if err != nil {
		return nil, err
	}
	m := make(map[int64]int64, len(res.Rows))
	for _, row := range res.Rows {
		m[row[0].I] = row[1].I
	}
	return m, nil
}
