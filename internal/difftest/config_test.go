package difftest

import (
	"reflect"
	"runtime"
	"testing"

	"tdbms/internal/bench"
	"tdbms/internal/core"
)

// configUC is the evolution depth of the configuration matrix: one uniform
// update round, so every query answers against real version chains
// (superseded versions, delete markers) while the heap cells' unindexed
// joins stay tier-1-fast. Deeper evolution is pinned by the golden figures.
const configUC = 1

// TestConfigMatrix is the differential oracle over live configurations: for
// each database type, every access method × buffer policy × execution path
// must produce byte-identical canonical result tuples for all twelve
// benchmark queries. The baseline cell is the paper's own configuration
// (hash/isam, single frame, default session).
func TestConfigMatrix(t *testing.T) {
	for _, typ := range bench.Types {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			t.Parallel()
			// The paper cell runs first to establish the baseline; the other
			// methods then verify against it in parallel.
			baseline := matrixCell(t, typ, "paper", nil)
			for _, method := range Methods[1:] {
				method := method
				t.Run(method, func(t *testing.T) {
					t.Parallel()
					matrixCell(t, typ, method, baseline)
				})
			}
		})
	}
}

// matrixCell builds one (type, method) database and checks every execution
// variant — session × buffer policy × batching mode — against the baseline
// (nil = this cell defines it).
func matrixCell(t *testing.T, typ bench.DBType, method string, baseline map[string]string) map[string]string {
	t.Helper()
	b, err := BuildMethod(typ, method, configUC, core.Options{})
	if err != nil {
		t.Fatalf("build %s/%s: %v", typ, method, err)
	}
	// The heap cells' unindexed joins are quadratic; running them once per
	// cell (the direct variant) covers the method axis, and the pool/session
	// × join interaction is covered by the paper and btree cells. The other
	// heap variants skip the join queries to stay tier-1-fast.
	joinsOnce := method == "heap"
	run := func(variant string, x Execer) {
		var skip func(string) bool
		if joinsOnce && variant != "direct" {
			skip = func(id string) bool { return JoinQueries[id] }
		}
		snap, err := SnapshotFiltered(x, typ, skip)
		if err != nil {
			t.Fatalf("%s/%s/%s: %v", typ, method, variant, err)
		}
		if baseline == nil {
			baseline = snap
			return
		}
		for id, got := range snap {
			if want := baseline[id]; got != want {
				t.Errorf("%s/%s/%s %s: result tuples diverge from baseline\n got: %q\nwant: %q",
					typ, method, variant, id, got, want)
			}
		}
	}

	// Default session, single-frame measurement policy.
	run("direct", b.Inner)

	// Explicit session, same policy.
	s, err := SessionFor(b, "zero", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	run("session", s)

	// Explicit session under a pooled policy with readahead.
	p, err := SessionFor(b, "pooled", 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	run("session+pool", p)

	// Default session re-pointed at the pooled policy.
	b.Inner.DefaultSession().SetBufferPolicy(32, 4)
	run("direct+pool", b.Inner)
	b.Inner.DefaultSession().ClearBufferPolicy()

	// Batching axis: the tuple-at-a-time interpreted executor and the batch
	// executor at its smallest capacity (every batch boundary exercised)
	// must match the default batch configuration above.
	tup, err := SessionFor(b, "tuple", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tup.SetBatchSize(-1)
	run("session+tuple", tup)
	one, err := SessionFor(b, "batch1", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	one.SetBatchSize(1)
	run("session+batch1", one)
	return baseline
}

// TestWorkerIndependence pins the bench-worker axis of the matrix: a full
// series sweep with one worker and with GOMAXPROCS workers must agree on
// every measurement — result rows and page counts alike.
func TestWorkerIndependence(t *testing.T) {
	one, err := bench.AllSeriesWorkers(1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	many, err := bench.AllSeriesWorkers(1, runtime.GOMAXPROCS(0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, many) {
		t.Error("series sweep differs between 1 worker and GOMAXPROCS workers")
	}
}
