package difftest

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tdbms/internal/core"
	"tdbms/internal/storage"
)

// syncCountLog counts the log's sync calls and makes each one slow enough
// that concurrent committers pile up behind the group-commit leader — the
// measurement harness for the syncs-versus-commits ratio.
type syncCountLog struct {
	storage.Log
	syncs *atomic.Int64
	delay time.Duration
}

func (l *syncCountLog) Sync() error {
	time.Sleep(l.delay)
	l.syncs.Add(1)
	return l.Log.Sync()
}

// TestGroupCommitDurability drives N concurrent sessions through synchronous
// commits on a WAL database and checks both halves of the group-commit
// bargain: far fewer log syncs than acknowledged commits, and — after an
// abandon-without-Close crash — every acknowledged statement survives
// recovery. A single sequential session, by contrast, pays exactly one sync
// per commit.
func TestGroupCommitDurability(t *testing.T) {
	const (
		writers = 6
		rounds  = 16
	)
	dir := t.TempDir()
	var syncs atomic.Int64
	open := func() *core.Database {
		t.Helper()
		db, err := core.Open(core.Options{
			Dir: dir, WAL: true, WALGroupWindow: 2 * time.Millisecond,
			WrapLog: func(_ string, l storage.Log) storage.Log {
				return &syncCountLog{Log: l, syncs: &syncs, delay: time.Millisecond}
			},
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db
	}
	db := open()
	for i := 0; i < writers; i++ {
		mustExec(t, db, fmt.Sprintf("create gc%d (id = i4, v = i4)", i))
	}
	setupSyncs := syncs.Load() // DDL checkpoints sync; measure past them

	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn := db.NewSession(fmt.Sprintf("writer%d", i))
			for k := 0; k < rounds; k++ {
				if _, err := conn.Exec(fmt.Sprintf("append to gc%d (id = %d, v = %d)", i, k, k*i)); err != nil {
					errs <- fmt.Errorf("writer %d round %d: %w", i, k, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	commits := int64(writers * rounds)
	grouped := syncs.Load() - setupSyncs
	if grouped == 0 {
		t.Fatalf("no syncs at all for %d synchronous commits", commits)
	}
	if grouped*2 > commits {
		t.Fatalf("group commit absorbed too little: %d syncs for %d commits", grouped, commits)
	}
	t.Logf("%d commits shared %d syncs", commits, grouped)

	// Crash: abandon db without Close. Every Exec above returned, so every
	// row was acknowledged under WALSyncCommit — recovery must produce all
	// of them.
	db2 := open()
	if err := db2.CheckIntegrity(); err != nil {
		t.Fatalf("integrity after crash: %v", err)
	}
	for i := 0; i < writers; i++ {
		res, err := db2.Exec(fmt.Sprintf("range of g is gc%d\nretrieve (g.id, g.v)", i))
		if err != nil {
			t.Fatalf("retrieve gc%d: %v", i, err)
		}
		if len(res.Rows) != rounds {
			t.Fatalf("gc%d recovered %d rows, want %d", i, len(res.Rows), rounds)
		}
	}

	// The contrast case: one session committing sequentially has no one to
	// share with — the policy must sync once per acknowledged commit, no
	// more and no fewer.
	const solo = 8
	before := syncs.Load()
	conn := db2.NewSession("solo")
	for k := 0; k < solo; k++ {
		if _, err := conn.Exec(fmt.Sprintf("append to gc0 (id = %d, v = %d)", 100+k, k)); err != nil {
			t.Fatalf("solo append %d: %v", k, err)
		}
	}
	if got := syncs.Load() - before; got != solo {
		t.Fatalf("sequential session paid %d syncs for %d commits, want exactly %d", got, solo, solo)
	}
	if err := db2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
