// Package tquel implements the TQuel language (Snodgrass 1984/1985): a
// lexer, recursive-descent parser, and AST for the superset of Quel handled
// by the prototype — retrieve/append/delete/replace/create augmented with
// the valid, when, and as-of clauses, plus range, modify, destroy, and copy.
package tquel

import (
	"fmt"
	"strconv"
	"strings"

	"tdbms/internal/tuple"
)

// Statement is any parsed TQuel statement.
type Statement interface {
	stmt()
	fmt.Stringer
}

// RangeStmt is `range of v is Rel`.
type RangeStmt struct {
	Var string
	Rel string
}

// RetrieveStmt is the augmented retrieve of Section 3.
type RetrieveStmt struct {
	Into    string // destination relation, or "" for output to the caller
	Unique  bool
	Targets []Target
	Valid   *ValidClause // nil: default valid clause
	Where   Expr         // nil: true
	When    TExpr        // nil: true
	AsOf    *AsOfClause  // nil: as of "now"
	Sort    []SortKey    // output ordering, by result column
}

// SortKey orders retrieve output by a result column.
type SortKey struct {
	Column string
	Desc   bool
}

// AppendStmt is `append [to] Rel (targets) [valid ...] [where ...] [when ...]`.
type AppendStmt struct {
	Rel     string
	Targets []Target
	Valid   *ValidClause
	Where   Expr
	When    TExpr
}

// DeleteStmt is `delete v [where ...] [when ...]`.
type DeleteStmt struct {
	Var   string
	Where Expr
	When  TExpr
}

// ReplaceStmt is `replace v (targets) [valid ...] [where ...] [when ...]`.
type ReplaceStmt struct {
	Var     string
	Targets []Target
	Valid   *ValidClause
	Where   Expr
	When    TExpr
}

// CreateStmt is the extended create: `create [persistent] [interval|event]
// Rel (attr = type, ...)`. Persistent requests transaction time (rollback),
// interval/event request valid time (historical); both together make the
// relation temporal, as in Figure 3 of the paper.
type CreateStmt struct {
	Rel        string
	Persistent bool
	Model      string // "", "interval", or "event"
	Attrs      []tuple.Attr
}

// ModifyStmt is `modify Rel to hash|isam|heap [on attr] [where fillfactor = n]`.
type ModifyStmt struct {
	Rel        string
	Method     string
	KeyAttr    string
	Fillfactor int // 0: default 100
}

// DestroyStmt is `destroy Rel`.
type DestroyStmt struct {
	Rel string
}

// CopyStmt is `copy Rel () from|into "file"` — the batch input/output
// statement the prototype modified to handle temporal attributes.
type CopyStmt struct {
	Rel  string
	Into bool // true: copy data out of the relation into the file
	File string
}

// IndexStmt is `index on Rel is Name (attr) [with structure = heap|hash]
// [with levels = 1|2]` — the Section 6 secondary-indexing extension.
type IndexStmt struct {
	Rel       string
	Name      string
	Attr      string
	Structure string // "heap" (default) or "hash"
	Levels    int    // 1 (default) or 2
}

// AnalyzeStmt is `analyze [Rel]`: rebuild the optimizer statistics of one
// relation, or of every relation when Rel is empty.
type AnalyzeStmt struct {
	Rel string
}

// Target is one element of a target or assignment list: `name = expr` or a
// bare attribute reference whose name is inherited.
type Target struct {
	Name string
	Expr Expr
}

// ValidClause is `valid from e to e` (interval) or `valid at e` (event).
type ValidClause struct {
	At       TExpr // non-nil for the event form
	From, To TExpr // non-nil for the interval form
}

// AsOfClause is `as of e [through e]`.
type AsOfClause struct {
	At      TExpr
	Through TExpr // nil for the single-instant form
}

func (*RangeStmt) stmt()    {}
func (*RetrieveStmt) stmt() {}
func (*AppendStmt) stmt()   {}
func (*DeleteStmt) stmt()   {}
func (*ReplaceStmt) stmt()  {}
func (*CreateStmt) stmt()   {}
func (*ModifyStmt) stmt()   {}
func (*DestroyStmt) stmt()  {}
func (*CopyStmt) stmt()     {}
func (*IndexStmt) stmt()    {}
func (*AnalyzeStmt) stmt()  {}

// Expr is a scalar (where-clause / target-list) expression.
type Expr interface {
	expr()
	fmt.Stringer
}

// ConstExpr is a literal.
type ConstExpr struct {
	Val tuple.Value
}

// AttrExpr is `var.attr`.
type AttrExpr struct {
	Var  string
	Attr string
}

// BinaryExpr applies Op to L and R. Ops: + - * / = != < <= > >= and or.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr applies Op to X. Ops: - not.
type UnaryExpr struct {
	Op string
	X  Expr
}

// TAttrExpr references an implicit time attribute as a scalar inside a
// target list (e.g. `h.valid_from`), letting retrieve output time values.
type TAttrExpr struct {
	X TExpr
	// Which endpoint of the temporal expression: "start" or "end".
	End string
}

// AggExpr is a Quel aggregate function over the qualified tuples:
// count, sum, avg, min, max, or any. A non-empty By list groups the
// aggregation (`sum(x.amount by x.dept)`), producing one result tuple per
// group.
type AggExpr struct {
	Fn  string
	Arg Expr
	By  []Expr
}

func (*ConstExpr) expr()  {}
func (*AttrExpr) expr()   {}
func (*BinaryExpr) expr() {}
func (*UnaryExpr) expr()  {}
func (*TAttrExpr) expr()  {}
func (*AggExpr) expr()    {}

// TExpr is a temporal expression as used in valid, when, and as-of clauses.
// Interval-valued forms (variables, constants, overlap, extend, start/end)
// coerce to booleans in predicate position: an interval is "true" when it
// is non-empty, so `when h overlap i` means the intersection exists.
type TExpr interface {
	texpr()
	fmt.Stringer
}

// TVar denotes the valid-time interval of a tuple variable.
type TVar struct {
	Var string
}

// TConst is a time constant string ("now", "forever", "08:00 1/1/80", ...).
type TConst struct {
	Text string
}

// TUnary is `start of X` or `end of X` (Op "start"/"end") or `not X`
// (Op "not").
type TUnary struct {
	Op string
	X  TExpr
}

// TBinary combines temporal expressions. Ops: overlap, extend (interval
// valued), precede (boolean), and, or (boolean).
type TBinary struct {
	Op   string
	L, R TExpr
}

func (*TVar) texpr()    {}
func (*TConst) texpr()  {}
func (*TUnary) texpr()  {}
func (*TBinary) texpr() {}

// --- String renderings (used in error messages and the shell) ---

func (s *RangeStmt) String() string { return fmt.Sprintf("range of %s is %s", s.Var, s.Rel) }

func targetsString(ts []Target) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = fmt.Sprintf("%s = %s", t.Name, t.Expr)
	}
	return strings.Join(parts, ", ")
}

func (s *RetrieveStmt) String() string {
	var b strings.Builder
	b.WriteString("retrieve ")
	if s.Into != "" {
		fmt.Fprintf(&b, "into %s ", s.Into)
	}
	if s.Unique {
		b.WriteString("unique ")
	}
	fmt.Fprintf(&b, "(%s)", targetsString(s.Targets))
	if s.Valid != nil {
		b.WriteString(" " + s.Valid.String())
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " where %s", s.Where)
	}
	if s.When != nil {
		fmt.Fprintf(&b, " when %s", s.When)
	}
	if s.AsOf != nil {
		b.WriteString(" " + s.AsOf.String())
	}
	if len(s.Sort) > 0 {
		parts := make([]string, len(s.Sort))
		for i, k := range s.Sort {
			parts[i] = k.Column
			if k.Desc {
				parts[i] += " desc"
			}
		}
		fmt.Fprintf(&b, " sort by %s", strings.Join(parts, ", "))
	}
	return b.String()
}

func (s *AppendStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "append to %s (%s)", s.Rel, targetsString(s.Targets))
	if s.Valid != nil {
		b.WriteString(" " + s.Valid.String())
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " where %s", s.Where)
	}
	if s.When != nil {
		fmt.Fprintf(&b, " when %s", s.When)
	}
	return b.String()
}

func (s *DeleteStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "delete %s", s.Var)
	if s.Where != nil {
		fmt.Fprintf(&b, " where %s", s.Where)
	}
	if s.When != nil {
		fmt.Fprintf(&b, " when %s", s.When)
	}
	return b.String()
}

func (s *ReplaceStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replace %s (%s)", s.Var, targetsString(s.Targets))
	if s.Valid != nil {
		b.WriteString(" " + s.Valid.String())
	}
	if s.Where != nil {
		fmt.Fprintf(&b, " where %s", s.Where)
	}
	if s.When != nil {
		fmt.Fprintf(&b, " when %s", s.When)
	}
	return b.String()
}

func (s *CreateStmt) String() string {
	var b strings.Builder
	b.WriteString("create ")
	if s.Persistent {
		b.WriteString("persistent ")
	}
	if s.Model != "" {
		b.WriteString(s.Model + " ")
	}
	parts := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		parts[i] = a.String()
	}
	fmt.Fprintf(&b, "%s (%s)", s.Rel, strings.Join(parts, ", "))
	return b.String()
}

func (s *ModifyStmt) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "modify %s to %s", s.Rel, s.Method)
	if s.KeyAttr != "" {
		fmt.Fprintf(&b, " on %s", s.KeyAttr)
	}
	if s.Fillfactor != 0 {
		fmt.Fprintf(&b, " where fillfactor = %d", s.Fillfactor)
	}
	return b.String()
}

func (s *DestroyStmt) String() string { return "destroy " + s.Rel }

func (s *CopyStmt) String() string {
	dir := "from"
	if s.Into {
		dir = "into"
	}
	return fmt.Sprintf("copy %s () %s %s", s.Rel, dir, quote(s.File))
}

func (s *IndexStmt) String() string {
	return fmt.Sprintf("index on %s is %s (%s) with structure = %s with levels = %d",
		s.Rel, s.Name, s.Attr, s.Structure, s.Levels)
}

func (s *AnalyzeStmt) String() string {
	if s.Rel == "" {
		return "analyze"
	}
	return "analyze " + s.Rel
}

func (v *ValidClause) String() string {
	if v.At != nil {
		return fmt.Sprintf("valid at %s", v.At)
	}
	return fmt.Sprintf("valid from %s to %s", v.From, v.To)
}

func (a *AsOfClause) String() string {
	if a.Through != nil {
		return fmt.Sprintf("as of %s through %s", a.At, a.Through)
	}
	return fmt.Sprintf("as of %s", a.At)
}

// quote renders a string constant the way the lexer reads one: backslash
// escapes only the next byte, so only `"` and `\` need escaping and every
// other byte is written raw. Go's %q would emit \n, \xNN, and friends, which
// the lexer reads back as the literal bytes 'n', 'x', '4'...
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' || s[i] == '\\' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}

func (e *ConstExpr) String() string {
	switch e.Val.Kind {
	case tuple.Char:
		return quote(e.Val.S)
	case tuple.F4, tuple.F8:
		// The number grammar has no exponent form, so scientific notation
		// (the default for large values) would not re-parse.
		return strconv.FormatFloat(e.Val.F, 'f', -1, 64)
	}
	return e.Val.String()
}

func (e *AttrExpr) String() string { return e.Var + "." + e.Attr }

func (e *BinaryExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

func (e *UnaryExpr) String() string {
	if e.Op == "not" {
		return fmt.Sprintf("not (%s)", e.X)
	}
	return fmt.Sprintf("%s(%s)", e.Op, e.X)
}

func (e *TAttrExpr) String() string { return fmt.Sprintf("%s of (%s)", e.End, e.X) }

func (e *AggExpr) String() string {
	if len(e.By) == 0 {
		return fmt.Sprintf("%s(%s)", e.Fn, e.Arg)
	}
	parts := make([]string, len(e.By))
	for i, b := range e.By {
		parts[i] = b.String()
	}
	return fmt.Sprintf("%s(%s by %s)", e.Fn, e.Arg, strings.Join(parts, ", "))
}

func (e *TVar) String() string   { return e.Var }
func (e *TConst) String() string { return quote(e.Text) }

func (e *TUnary) String() string {
	if e.Op == "not" {
		return fmt.Sprintf("not (%s)", e.X)
	}
	return fmt.Sprintf("%s of %s", e.Op, e.X)
}

func (e *TBinary) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
