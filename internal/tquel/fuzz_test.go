package tquel_test

import (
	"testing"

	"tdbms/internal/bench"
	"tdbms/internal/core"
	"tdbms/internal/tquel"
)

// seedCorpus is every statement the benchmark itself exercises: the twelve
// Figure 4 queries for each database type, plus the DDL/DML shapes the
// workload uses. Fuzzing mutates outward from the grammar the engine
// actually runs.
func seedCorpus() []string {
	seeds := []string{
		"range of h is temporal_h",
		`create persistent interval x (id = i4, amount = i4, name = c20)`,
		"append x (id = 1, amount = 2, name = \"y\")",
		"replace h (seq = h.seq + 1) where h.id = 500",
		"delete h where h.id = 3",
		"modify x to btree on id",
		"modify x to heap",
		"index on x is xid (id)",
		"destroy x",
		`retrieve (n = count(h.id by h.seq)) valid at begin of h`,
	}
	for _, t := range bench.Types {
		for _, q := range bench.Queries(t) {
			if q.Text != "" {
				seeds = append(seeds, q.Text)
			}
		}
	}
	return seeds
}

// FuzzParse asserts the parser is total: any input either parses or returns
// an error — never a panic — and whatever parses must round-trip through
// String() to an equivalent statement.
func FuzzParse(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := tquel.ParseAll(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			rendered := s.String()
			again, err := tquel.Parse(rendered)
			if err != nil {
				t.Fatalf("String() of a parsed statement does not re-parse\n input: %q\nrender: %q\n error: %v", src, rendered, err)
			}
			if r2 := again.String(); r2 != rendered {
				t.Fatalf("String() is not a fixed point\n first: %q\nsecond: %q", rendered, r2)
			}
		}
	})
}

// FuzzAnalyze pushes parsed statements through analysis and execution
// against a small in-memory database: any input must produce a result or an
// error, never a panic. Copy statements are skipped — they write to
// arbitrary operating-system paths.
func FuzzAnalyze(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := tquel.ParseAll(src)
		if err != nil {
			return
		}
		db, err := core.Open(core.Options{})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer db.Close()
		setup := []string{
			`create persistent interval fz (id = i4, seq = i4, name = c8)`,
			`append fz (id = 1, seq = 0, name = "a")`,
			`append fz (id = 2, seq = 0, name = "b")`,
			"range of h is fz",
			"range of i is fz",
		}
		for _, s := range setup {
			if _, err := db.Exec(s); err != nil {
				t.Fatalf("setup %q: %v", s, err)
			}
		}
		for _, s := range stmts {
			if _, ok := s.(*tquel.CopyStmt); ok {
				continue
			}
			_, _ = db.ExecStmt(s) // errors are fine; panics are the bug
		}
	})
}
