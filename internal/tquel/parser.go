package tquel

import (
	"fmt"
	"strconv"
	"strings"

	"tdbms/internal/tuple"
)

// Parse parses a single TQuel statement.
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("tquel: expected one statement, found %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a sequence of TQuel statements. Statements are not
// terminated; each begins with its keyword, as in Quel scripts.
func ParseAll(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Statement
	for !p.at(tokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// at reports whether the current token has the given kind and (for
// identifiers and operators) text.
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if !p.at(kind, text) {
		t := p.peek()
		want := text
		if want == "" {
			want = map[tokenKind]string{
				tokIdent: "identifier", tokInt: "integer", tokFloat: "number",
				tokString: "string constant", tokOp: "operator",
			}[kind]
		}
		return token{}, fmt.Errorf("tquel: expected %s at offset %d, found %q", want, t.pos, t.text)
	}
	return p.next(), nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("tquel: expected a statement at offset %d, found %q", t.pos, t.text)
	}
	switch t.text {
	case "range":
		return p.rangeStmt()
	case "retrieve":
		return p.retrieveStmt()
	case "append":
		return p.appendStmt()
	case "delete":
		return p.deleteStmt()
	case "replace":
		return p.replaceStmt()
	case "create":
		return p.createStmt()
	case "modify":
		return p.modifyStmt()
	case "destroy":
		return p.destroyStmt()
	case "copy":
		return p.copyStmt()
	case "index":
		return p.indexStmt()
	case "analyze":
		return p.analyzeStmt()
	}
	return nil, fmt.Errorf("tquel: unknown statement %q at offset %d", t.text, t.pos)
}

func (p *parser) rangeStmt() (Statement, error) {
	p.next() // range
	if _, err := p.expect(tokIdent, "of"); err != nil {
		return nil, err
	}
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "is"); err != nil {
		return nil, err
	}
	rel, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &RangeStmt{Var: v, Rel: rel}, nil
}

// clauses parses the optional valid / where / when / as-of clauses in any
// order, each at most once. Flags select which clauses the statement allows.
type clauseSet struct {
	valid *ValidClause
	where Expr
	when  TExpr
	asof  *AsOfClause
}

func (p *parser) clauses(allowValid, allowAsOf bool) (clauseSet, error) {
	var cs clauseSet
	for {
		switch {
		case allowValid && p.at(tokIdent, "valid"):
			if cs.valid != nil {
				return cs, fmt.Errorf("tquel: duplicate valid clause")
			}
			v, err := p.validClause()
			if err != nil {
				return cs, err
			}
			cs.valid = v
		case p.at(tokIdent, "where"):
			if cs.where != nil {
				return cs, fmt.Errorf("tquel: duplicate where clause")
			}
			p.next()
			e, err := p.expr()
			if err != nil {
				return cs, err
			}
			cs.where = e
		case p.at(tokIdent, "when"):
			if cs.when != nil {
				return cs, fmt.Errorf("tquel: duplicate when clause")
			}
			p.next()
			e, err := p.texpr()
			if err != nil {
				return cs, err
			}
			cs.when = e
		case allowAsOf && p.at(tokIdent, "as"):
			if cs.asof != nil {
				return cs, fmt.Errorf("tquel: duplicate as-of clause")
			}
			p.next()
			if _, err := p.expect(tokIdent, "of"); err != nil {
				return cs, err
			}
			at, err := p.tival()
			if err != nil {
				return cs, err
			}
			a := &AsOfClause{At: at}
			if p.accept(tokIdent, "through") {
				th, err := p.tival()
				if err != nil {
					return cs, err
				}
				a.Through = th
			}
			cs.asof = a
		default:
			return cs, nil
		}
	}
}

func (p *parser) validClause() (*ValidClause, error) {
	p.next() // valid
	if p.accept(tokIdent, "at") {
		e, err := p.tival()
		if err != nil {
			return nil, err
		}
		return &ValidClause{At: e}, nil
	}
	if _, err := p.expect(tokIdent, "from"); err != nil {
		return nil, err
	}
	from, err := p.tival()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "to"); err != nil {
		return nil, err
	}
	to, err := p.tival()
	if err != nil {
		return nil, err
	}
	return &ValidClause{From: from, To: to}, nil
}

func (p *parser) retrieveStmt() (Statement, error) {
	p.next() // retrieve
	s := &RetrieveStmt{}
	if p.accept(tokIdent, "into") {
		rel, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.Into = rel
	}
	if p.accept(tokIdent, "unique") {
		s.Unique = true
	}
	ts, err := p.targetList()
	if err != nil {
		return nil, err
	}
	s.Targets = ts
	cs, err := p.clauses(true, true)
	if err != nil {
		return nil, err
	}
	s.Valid, s.Where, s.When, s.AsOf = cs.valid, cs.where, cs.when, cs.asof
	if p.accept(tokIdent, "sort") {
		if _, err := p.expect(tokIdent, "by"); err != nil {
			return nil, err
		}
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			k := SortKey{Column: col}
			if p.accept(tokIdent, "desc") {
				k.Desc = true
			} else {
				p.accept(tokIdent, "asc")
			}
			s.Sort = append(s.Sort, k)
			if !p.accept(tokOp, ",") {
				break
			}
		}
	}
	return s, nil
}

func (p *parser) appendStmt() (Statement, error) {
	p.next() // append
	p.accept(tokIdent, "to")
	rel, err := p.ident()
	if err != nil {
		return nil, err
	}
	ts, err := p.targetList()
	if err != nil {
		return nil, err
	}
	cs, err := p.clauses(true, false)
	if err != nil {
		return nil, err
	}
	return &AppendStmt{Rel: rel, Targets: ts, Valid: cs.valid, Where: cs.where, When: cs.when}, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // delete
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	cs, err := p.clauses(false, false)
	if err != nil {
		return nil, err
	}
	return &DeleteStmt{Var: v, Where: cs.where, When: cs.when}, nil
}

func (p *parser) replaceStmt() (Statement, error) {
	p.next() // replace
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	ts, err := p.targetList()
	if err != nil {
		return nil, err
	}
	cs, err := p.clauses(true, false)
	if err != nil {
		return nil, err
	}
	return &ReplaceStmt{Var: v, Targets: ts, Valid: cs.valid, Where: cs.where, When: cs.when}, nil
}

func (p *parser) createStmt() (Statement, error) {
	p.next() // create
	s := &CreateStmt{}
	if p.accept(tokIdent, "persistent") {
		s.Persistent = true
	}
	if p.accept(tokIdent, "interval") {
		s.Model = "interval"
	} else if p.accept(tokIdent, "event") {
		s.Model = "event"
	}
	rel, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Rel = rel
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		tt, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		attr, err := parseAttrType(name, tt.text)
		if err != nil {
			return nil, err
		}
		s.Attrs = append(s.Attrs, attr)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return s, nil
}

// parseAttrType maps Quel type spellings (i1, i2, i4, f4, f8, cN) plus the
// user-defined-time type `temporal` to attributes.
func parseAttrType(name, typ string) (tuple.Attr, error) {
	switch typ {
	case "i1":
		return tuple.Attr{Name: name, Kind: tuple.I1}, nil
	case "i2":
		return tuple.Attr{Name: name, Kind: tuple.I2}, nil
	case "i4":
		return tuple.Attr{Name: name, Kind: tuple.I4}, nil
	case "f4":
		return tuple.Attr{Name: name, Kind: tuple.F4}, nil
	case "f8":
		return tuple.Attr{Name: name, Kind: tuple.F8}, nil
	case "temporal":
		return tuple.Attr{Name: name, Kind: tuple.Temporal}, nil
	}
	if strings.HasPrefix(typ, "c") {
		if n, err := strconv.Atoi(typ[1:]); err == nil && n > 0 && n <= 2000 {
			return tuple.Attr{Name: name, Kind: tuple.Char, Len: n}, nil
		}
	}
	return tuple.Attr{}, fmt.Errorf("tquel: unknown attribute type %q", typ)
}

func (p *parser) modifyStmt() (Statement, error) {
	p.next() // modify
	rel, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "to"); err != nil {
		return nil, err
	}
	method, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch method {
	case "hash", "isam", "heap", "btree":
	default:
		return nil, fmt.Errorf("tquel: unknown storage structure %q", method)
	}
	s := &ModifyStmt{Rel: rel, Method: method}
	if p.accept(tokIdent, "on") {
		attr, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.KeyAttr = attr
	}
	if p.accept(tokIdent, "where") {
		if _, err := p.expect(tokIdent, "fillfactor"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		n, err := p.expect(tokInt, "")
		if err != nil {
			return nil, err
		}
		ff, _ := strconv.Atoi(n.text) //tdbvet:ignore errcheck tokInt is a lexer-validated digit run
		if ff < 1 || ff > 100 {
			return nil, fmt.Errorf("tquel: fillfactor %d out of range [1,100]", ff)
		}
		s.Fillfactor = ff
	}
	return s, nil
}

func (p *parser) destroyStmt() (Statement, error) {
	p.next() // destroy
	rel, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DestroyStmt{Rel: rel}, nil
}

func (p *parser) analyzeStmt() (Statement, error) {
	p.next() // analyze
	s := &AnalyzeStmt{}
	// The relation is optional and statements are not terminated, so a
	// following statement keyword belongs to the next statement.
	if t := p.peek(); t.kind == tokIdent && !isStmtKeyword(t.text) {
		s.Rel = p.next().text
	}
	return s, nil
}

func isStmtKeyword(w string) bool {
	switch w {
	case "range", "retrieve", "append", "delete", "replace",
		"create", "modify", "destroy", "copy", "index", "analyze":
		return true
	}
	return false
}

func (p *parser) copyStmt() (Statement, error) {
	p.next() // copy
	rel, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.accept(tokOp, "(") {
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
	}
	var into bool
	switch {
	case p.accept(tokIdent, "from"):
	case p.accept(tokIdent, "into"):
		into = true
	default:
		return nil, fmt.Errorf("tquel: copy needs `from` or `into`")
	}
	f, err := p.expect(tokString, "")
	if err != nil {
		return nil, err
	}
	return &CopyStmt{Rel: rel, Into: into, File: f.text}, nil
}

func (p *parser) indexStmt() (Statement, error) {
	p.next() // index
	if _, err := p.expect(tokIdent, "on"); err != nil {
		return nil, err
	}
	rel, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "is"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	attr, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	s := &IndexStmt{Rel: rel, Name: name, Attr: attr, Structure: "heap", Levels: 1}
	for p.accept(tokIdent, "with") {
		k, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, "="); err != nil {
			return nil, err
		}
		switch k {
		case "structure":
			v, err := p.ident()
			if err != nil {
				return nil, err
			}
			if v != "heap" && v != "hash" {
				return nil, fmt.Errorf("tquel: index structure must be heap or hash, got %q", v)
			}
			s.Structure = v
		case "levels":
			n, err := p.expect(tokInt, "")
			if err != nil {
				return nil, err
			}
			lv, _ := strconv.Atoi(n.text) //tdbvet:ignore errcheck tokInt is a lexer-validated digit run
			if lv != 1 && lv != 2 {
				return nil, fmt.Errorf("tquel: index levels must be 1 or 2, got %d", lv)
			}
			s.Levels = lv
		default:
			return nil, fmt.Errorf("tquel: unknown index option %q", k)
		}
	}
	return s, nil
}

// targetList parses `( target {, target} )`.
func (p *parser) targetList() ([]Target, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	var ts []Target
	for {
		t, err := p.target()
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	return ts, nil
}

// target parses `name = expr`, `var.attr` (result name attr), or
// `var.all` (expanded by the executor).
func (p *parser) target() (Target, error) {
	// Lookahead for `ident =` (but not `ident ==`, which cannot occur).
	if p.at(tokIdent, "") && p.toks[p.i+1].kind == tokOp && p.toks[p.i+1].text == "=" {
		name := p.next().text
		p.next() // =
		e, err := p.expr()
		if err != nil {
			return Target{}, err
		}
		return Target{Name: name, Expr: e}, nil
	}
	e, err := p.expr()
	if err != nil {
		return Target{}, err
	}
	if a, ok := e.(*AttrExpr); ok {
		return Target{Name: a.Attr, Expr: e}, nil
	}
	return Target{}, fmt.Errorf("tquel: target expression %s needs a result name (name = expr)", e)
}

// --- scalar expressions ---

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	if p.accept(tokIdent, "not") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "not", X: x}, nil
	}
	return p.cmpExpr()
}

var cmpOps = map[string]bool{"=": true, "!=": true, "<": true, "<=": true, ">": true, ">=": true}

// aggFns are the Quel aggregate functions accepted in target lists.
var aggFns = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true, "any": true,
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind == tokOp && cmpOps[p.peek().text] {
		op := p.next().text
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "+" || p.peek().text == "-") {
		op := p.next().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOp && (p.peek().text == "*" || p.peek().text == "/") {
		op := p.next().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.peek().kind == tokOp && p.peek().text == "-" {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.primaryExpr()
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tquel: bad integer %q", t.text)
		}
		return &ConstExpr{Val: tuple.IntValue(n)}, nil
	case tokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("tquel: bad number %q", t.text)
		}
		return &ConstExpr{Val: tuple.FloatValue(f)}, nil
	case tokString:
		p.next()
		return &ConstExpr{Val: tuple.StrValue(t.text)}, nil
	case tokOp:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		// `start of <tival>` / `end of <tival>` project a temporal
		// expression's endpoint into the scalar domain (target lists).
		if (t.text == "start" || t.text == "end") && p.toks[p.i+1].kind == tokIdent && p.toks[p.i+1].text == "of" {
			p.next()
			p.next()
			x, err := p.tival()
			if err != nil {
				return nil, err
			}
			return &TAttrExpr{X: x, End: t.text}, nil
		}
		// Quel aggregate functions, with the optional grouping `by` list.
		if aggFns[t.text] && p.toks[p.i+1].kind == tokOp && p.toks[p.i+1].text == "(" {
			p.next()
			p.next()
			arg, err := p.expr()
			if err != nil {
				return nil, err
			}
			agg := &AggExpr{Fn: t.text, Arg: arg}
			if p.accept(tokIdent, "by") {
				for {
					b, err := p.expr()
					if err != nil {
						return nil, err
					}
					agg.By = append(agg.By, b)
					if !p.accept(tokOp, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return agg, nil
		}
		p.next()
		if p.accept(tokOp, ".") {
			attr, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &AttrExpr{Var: t.text, Attr: attr}, nil
		}
		return nil, fmt.Errorf("tquel: bare identifier %q at offset %d (attributes are written var.attr)", t.text, t.pos)
	}
	return nil, fmt.Errorf("tquel: unexpected token %q at offset %d", t.text, t.pos)
}

// --- temporal expressions ---

func (p *parser) texpr() (TExpr, error) { return p.tor() }

func (p *parser) tor() (TExpr, error) {
	l, err := p.tand()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "or") {
		r, err := p.tand()
		if err != nil {
			return nil, err
		}
		l = &TBinary{Op: "or", L: l, R: r}
	}
	return l, nil
}

func (p *parser) tand() (TExpr, error) {
	l, err := p.tnot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokIdent, "and") {
		r, err := p.tnot()
		if err != nil {
			return nil, err
		}
		l = &TBinary{Op: "and", L: l, R: r}
	}
	return l, nil
}

func (p *parser) tnot() (TExpr, error) {
	if p.accept(tokIdent, "not") {
		x, err := p.tnot()
		if err != nil {
			return nil, err
		}
		return &TUnary{Op: "not", X: x}, nil
	}
	return p.tchain()
}

// tchain parses a left-associative chain of overlap / extend / precede /
// equal over interval terms.
func (p *parser) tchain() (TExpr, error) {
	l, err := p.tival()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.accept(tokIdent, "overlap"):
			op = "overlap"
		case p.accept(tokIdent, "extend"):
			op = "extend"
		case p.accept(tokIdent, "precede"):
			op = "precede"
		case p.accept(tokIdent, "equal"):
			op = "equal"
		default:
			return l, nil
		}
		r, err := p.tival()
		if err != nil {
			return nil, err
		}
		l = &TBinary{Op: op, L: l, R: r}
	}
}

// tival parses an interval-valued term: `start of X`, `end of X`, a tuple
// variable, a time constant, or a parenthesized temporal expression.
func (p *parser) tival() (TExpr, error) {
	t := p.peek()
	switch {
	case t.kind == tokIdent && (t.text == "start" || t.text == "end"):
		op := p.next().text
		if _, err := p.expect(tokIdent, "of"); err != nil {
			return nil, err
		}
		x, err := p.tival()
		if err != nil {
			return nil, err
		}
		return &TUnary{Op: op, X: x}, nil
	case t.kind == tokIdent:
		p.next()
		return &TVar{Var: t.text}, nil
	case t.kind == tokString:
		p.next()
		return &TConst{Text: t.text}, nil
	case t.kind == tokOp && t.text == "(":
		p.next()
		e, err := p.texpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokOp, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("tquel: expected a temporal expression at offset %d, found %q", t.pos, t.text)
}
