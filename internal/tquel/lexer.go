package tquel

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokFloat
	tokString // double-quoted
	tokOp     // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // identifiers lowercased; strings unquoted
	pos  int    // byte offset in the input, for error messages
}

// lexer tokenizes a TQuel statement. Identifiers and keywords are
// case-insensitive (lowercased in the token); string constants keep case.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent(start)
		case c >= '0' && c <= '9':
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '"':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		default:
			if err := l.lexOp(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*' {
			// Quel block comment.
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
				return
			}
			l.pos += 2 + end + 2
			continue
		}
		if !unicode.IsSpace(rune(c)) {
			return
		}
		l.pos++
	}
}

// Identifiers are ASCII. The lexer walks bytes, so a byte-at-a-time rune
// conversion would read high bytes as Latin-1 letters — and the ToLower in
// lexIdent would then fold the invalid UTF-8 into U+FFFD, producing a token
// that no longer matches the input.
func isIdentStart(r rune) bool {
	return r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || (r >= '0' && r <= '9')
}

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.emit(tokIdent, strings.ToLower(l.src[start:l.pos]), start)
}

func (l *lexer) lexNumber(start int) error {
	isFloat := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !isFloat && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isFloat = true
			l.pos++
			continue
		}
		break
	}
	kind := tokInt
	if isFloat {
		kind = tokFloat
	}
	if l.pos < len(l.src) && isIdentStart(rune(l.src[l.pos])) {
		return fmt.Errorf("tquel: malformed number at offset %d", start)
	}
	l.emit(kind, l.src[start:l.pos], start)
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.emit(tokString, b.String(), start)
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("tquel: unterminated string constant at offset %d", start)
}

// twoCharOps are recognized before single-character operators.
var twoCharOps = []string{"!=", "<=", ">="}

var oneCharOps = "=<>+-*/(),."

func (l *lexer) lexOp(start int) error {
	rest := l.src[l.pos:]
	for _, op := range twoCharOps {
		if strings.HasPrefix(rest, op) {
			l.pos += len(op)
			l.emit(tokOp, op, start)
			return nil
		}
	}
	c := l.src[l.pos]
	if strings.IndexByte(oneCharOps, c) >= 0 {
		l.pos++
		l.emit(tokOp, string(c), start)
		return nil
	}
	return fmt.Errorf("tquel: unexpected character %q at offset %d", c, start)
}
