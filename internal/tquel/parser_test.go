package tquel

import (
	"strings"
	"testing"

	"tdbms/internal/tuple"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestRange(t *testing.T) {
	s := mustParse(t, `range of h is temporal_h`).(*RangeStmt)
	if s.Var != "h" || s.Rel != "temporal_h" {
		t.Errorf("parsed %+v", s)
	}
}

func TestCreateFigure3(t *testing.T) {
	// The create statement from Figure 3 of the paper.
	s := mustParse(t, `create persistent interval Temporal_h
		(id = i4, amount = i4, seq = i4, string = c96)`).(*CreateStmt)
	if !s.Persistent || s.Model != "interval" || s.Rel != "temporal_h" {
		t.Fatalf("parsed %+v", s)
	}
	if len(s.Attrs) != 4 {
		t.Fatalf("%d attrs", len(s.Attrs))
	}
	if s.Attrs[3].Kind != tuple.Char || s.Attrs[3].Len != 96 {
		t.Errorf("string attr = %+v", s.Attrs[3])
	}
	if s.Attrs[0].Kind != tuple.I4 {
		t.Errorf("id attr = %+v", s.Attrs[0])
	}
}

func TestCreateVariants(t *testing.T) {
	if s := mustParse(t, `create r (a = i4)`).(*CreateStmt); s.Persistent || s.Model != "" {
		t.Errorf("static create: %+v", s)
	}
	if s := mustParse(t, `create persistent r (a = i4)`).(*CreateStmt); !s.Persistent || s.Model != "" {
		t.Errorf("rollback create: %+v", s)
	}
	if s := mustParse(t, `create event r (a = i4, t = temporal)`).(*CreateStmt); s.Persistent || s.Model != "event" {
		t.Errorf("event create: %+v", s)
	}
}

func TestModifyFigure3(t *testing.T) {
	s := mustParse(t, `modify Temporal_h to hash on id where fillfactor = 100`).(*ModifyStmt)
	if s.Rel != "temporal_h" || s.Method != "hash" || s.KeyAttr != "id" || s.Fillfactor != 100 {
		t.Errorf("parsed %+v", s)
	}
	s = mustParse(t, `modify Temporal_i to isam on id where fillfactor = 50`).(*ModifyStmt)
	if s.Method != "isam" || s.Fillfactor != 50 {
		t.Errorf("parsed %+v", s)
	}
	s = mustParse(t, `modify r to heap`).(*ModifyStmt)
	if s.Method != "heap" || s.KeyAttr != "" || s.Fillfactor != 0 {
		t.Errorf("parsed %+v", s)
	}
}

func TestModifyRejectsBadInput(t *testing.T) {
	for _, src := range []string{
		`modify r to gridfile on id`,
		`modify r to hash on id where fillfactor = 0`,
		`modify r to hash on id where fillfactor = 101`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestBenchmarkQueriesParse(t *testing.T) {
	// Every query of Figure 4 must parse.
	queries := []string{
		`retrieve (h.id, h.seq) where h.id = 500`,
		`retrieve (i.id, i.seq) where i.id = 500`,
		`retrieve (h.id, h.seq) as of "08:00 1/1/80"`,
		`retrieve (i.id, i.seq) as of "08:00 1/1/80"`,
		`retrieve (h.id, h.seq) where h.id = 500 when h overlap "now"`,
		`retrieve (i.id, i.seq) where i.id = 500 when i overlap "now"`,
		`retrieve (h.id, h.seq) where h.amount = 69400 when h overlap "now"`,
		`retrieve (i.id, i.seq) where i.amount = 73700 when i overlap "now"`,
		`retrieve (h.id, i.id, i.amount) where h.id = i.amount when h overlap i and i overlap "now"`,
		`retrieve (i.id, h.id, h.amount) where i.id = h.amount when h overlap i and h overlap "now"`,
		`retrieve (h.id, h.seq, i.id, i.seq, i.amount)
			valid from start of h to end of i
			when start of h precede i
			as of "4:00 1/1/80"`,
		`retrieve (h.id, h.seq, i.id, i.seq, i.amount)
			valid from start of (h overlap i) to end of (h extend i)
			where h.id = 500 and i.amount = 73700
			when h overlap i
			as of "now"`,
	}
	for i, q := range queries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Q%02d: %v", i+1, err)
		}
	}
}

func TestFigure2Query(t *testing.T) {
	s := mustParse(t, `retrieve (h.id, h.seq, i.id, i.seq, i.amount)
		valid from start of (h overlap i) to end of (h extend i)
		where h.id = 500 and i.amount = 73700
		when h overlap i
		as of "1981"`).(*RetrieveStmt)
	if len(s.Targets) != 5 {
		t.Fatalf("%d targets", len(s.Targets))
	}
	if s.Targets[4].Name != "amount" {
		t.Errorf("target 5 name %q", s.Targets[4].Name)
	}
	if s.Valid == nil || s.Valid.From == nil || s.Valid.To == nil {
		t.Fatal("missing valid clause")
	}
	from, ok := s.Valid.From.(*TUnary)
	if !ok || from.Op != "start" {
		t.Fatalf("valid from = %v", s.Valid.From)
	}
	if ov, ok := from.X.(*TBinary); !ok || ov.Op != "overlap" {
		t.Fatalf("valid from operand = %v", from.X)
	}
	if s.AsOf == nil || s.AsOf.At.(*TConst).Text != "1981" {
		t.Fatalf("as of = %v", s.AsOf)
	}
	if s.Where == nil {
		t.Fatal("missing where")
	}
	w := s.Where.(*BinaryExpr)
	if w.Op != "and" {
		t.Errorf("where op %q", w.Op)
	}
	if s.When == nil {
		t.Fatal("missing when")
	}
	when := s.When.(*TBinary)
	if when.Op != "overlap" {
		t.Errorf("when op %q", when.Op)
	}
}

func TestRetrieveInto(t *testing.T) {
	s := mustParse(t, `retrieve into tmp (x = h.id + 1, h.seq) where h.id > 3 and not h.id >= 10`).(*RetrieveStmt)
	if s.Into != "tmp" {
		t.Errorf("into %q", s.Into)
	}
	if s.Targets[0].Name != "x" || s.Targets[1].Name != "seq" {
		t.Errorf("targets %+v", s.Targets)
	}
}

func TestAppendDeleteReplace(t *testing.T) {
	a := mustParse(t, `append to hist (id = 1, name = "x") valid from "1/1/80" to "forever"`).(*AppendStmt)
	if a.Rel != "hist" || a.Valid == nil || len(a.Targets) != 2 {
		t.Errorf("append: %+v", a)
	}
	d := mustParse(t, `delete h where h.id = 3`).(*DeleteStmt)
	if d.Var != "h" || d.Where == nil {
		t.Errorf("delete: %+v", d)
	}
	r := mustParse(t, `replace h (seq = h.seq + 1) where h.id = 4 when h overlap "now"`).(*ReplaceStmt)
	if r.Var != "h" || r.Where == nil || r.When == nil {
		t.Errorf("replace: %+v", r)
	}
}

func TestValidAt(t *testing.T) {
	s := mustParse(t, `append to ev (id = 1) valid at "08:00 1/1/80"`).(*AppendStmt)
	if s.Valid == nil || s.Valid.At == nil {
		t.Fatalf("valid at missing: %+v", s.Valid)
	}
}

func TestAsOfThrough(t *testing.T) {
	s := mustParse(t, `retrieve (h.id) as of "1/1/80" through "2/1/80"`).(*RetrieveStmt)
	if s.AsOf == nil || s.AsOf.Through == nil {
		t.Fatalf("as of through: %+v", s.AsOf)
	}
}

func TestCopyDestroyIndex(t *testing.T) {
	c := mustParse(t, `copy r () from "data.txt"`).(*CopyStmt)
	if c.Rel != "r" || c.Into || c.File != "data.txt" {
		t.Errorf("copy: %+v", c)
	}
	c = mustParse(t, `copy r into "out.txt"`).(*CopyStmt)
	if !c.Into {
		t.Errorf("copy into: %+v", c)
	}
	d := mustParse(t, `destroy r`).(*DestroyStmt)
	if d.Rel != "r" {
		t.Errorf("destroy: %+v", d)
	}
	ix := mustParse(t, `index on r is r_amount (amount) with structure = hash with levels = 2`).(*IndexStmt)
	if ix.Rel != "r" || ix.Attr != "amount" || ix.Structure != "hash" || ix.Levels != 2 {
		t.Errorf("index: %+v", ix)
	}
}

func TestParseAllMultipleStatements(t *testing.T) {
	stmts, err := ParseAll(`
		create r (a = i4)
		modify r to hash on a where fillfactor = 100
		range of x is r
		retrieve (x.a)
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 4 {
		t.Fatalf("%d statements", len(stmts))
	}
}

func TestComments(t *testing.T) {
	s := mustParse(t, `range of h is temporal_h /* 1024 tuples, hashed on id */`).(*RangeStmt)
	if s.Rel != "temporal_h" {
		t.Errorf("%+v", s)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	s := mustParse(t, `retrieve (x = h.a + h.b * 2)`).(*RetrieveStmt)
	add := s.Targets[0].Expr.(*BinaryExpr)
	if add.Op != "+" {
		t.Fatalf("top op %q", add.Op)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != "*" {
		t.Errorf("rhs %v", add.R)
	}

	s = mustParse(t, `retrieve (h.a) where h.a = 1 or h.b = 2 and h.c = 3`).(*RetrieveStmt)
	or := s.Where.(*BinaryExpr)
	if or.Op != "or" {
		t.Fatalf("where top op %q (and must bind tighter than or)", or.Op)
	}
}

func TestUnaryMinus(t *testing.T) {
	s := mustParse(t, `retrieve (x = -h.a)`).(*RetrieveStmt)
	u := s.Targets[0].Expr.(*UnaryExpr)
	if u.Op != "-" {
		t.Errorf("unary %+v", u)
	}
}

func TestStartEndInTargetList(t *testing.T) {
	s := mustParse(t, `retrieve (h.id, at = start of h)`).(*RetrieveStmt)
	ta, ok := s.Targets[1].Expr.(*TAttrExpr)
	if !ok || ta.End != "start" {
		t.Errorf("target %+v", s.Targets[1])
	}
}

func TestAggregatesParse(t *testing.T) {
	s := mustParse(t, `retrieve (n = count(x.a), m = max(x.b) - min(x.b))`).(*RetrieveStmt)
	if _, ok := s.Targets[0].Expr.(*AggExpr); !ok {
		t.Fatalf("target 0: %T", s.Targets[0].Expr)
	}
	diff := s.Targets[1].Expr.(*BinaryExpr)
	if _, ok := diff.L.(*AggExpr); !ok {
		t.Fatalf("nested aggregate: %T", diff.L)
	}
	// An identifier that merely looks like an aggregate stays an attribute.
	s = mustParse(t, `retrieve (x.count)`).(*RetrieveStmt)
	if _, ok := s.Targets[0].Expr.(*AttrExpr); !ok {
		t.Fatalf("x.count parsed as %T", s.Targets[0].Expr)
	}
}

func TestSortByParse(t *testing.T) {
	s := mustParse(t, `retrieve (x.a, x.b) sort by a desc, b asc`).(*RetrieveStmt)
	if len(s.Sort) != 2 || !s.Sort[0].Desc || s.Sort[1].Desc {
		t.Fatalf("sort keys: %+v", s.Sort)
	}
	if _, err := Parse(`retrieve (x.a) sort by`); err == nil {
		t.Error("empty sort list accepted")
	}
	// String round trip keeps the sort clause.
	if got := mustParse(t, s.String()).String(); got != s.String() {
		t.Errorf("round trip: %s vs %s", got, s)
	}
}

func TestBtreeModifyParse(t *testing.T) {
	s := mustParse(t, `modify r to btree on id`).(*ModifyStmt)
	if s.Method != "btree" || s.KeyAttr != "id" {
		t.Errorf("%+v", s)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`retrieve`,
		`retrieve ()`,
		`retrieve (h.id`,
		`retrieve (5)`,                    // unnamed constant target
		`retrieve (h.id) where`,           // missing expression
		`retrieve (id)`,                   // bare identifier
		`select * from t`,                 // not Quel
		`create r ()`,                     // no attributes
		`create r (a = i9)`,               // bad type
		`create r (a = c0)`,               // bad char length
		`range of h temporal_h`,           // missing is
		`retrieve (h.id) where h.id = "x`, // unterminated string
		`retrieve (h.id) where h.id @ 3`,  // bad operator
		`retrieve (h.id) where h.id = 5x`, // malformed number
		`retrieve (h.id) when`,
		`copy r sideways "f"`,
		`index on r is i (a) with structure = btree`,
		`retrieve (h.id) as of "now" as of "now"`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded", src)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	// String() output of a parsed statement re-parses to the same string.
	srcs := []string{
		`retrieve (h.id, h.seq, i.id, i.seq, i.amount)
			valid from start of (h overlap i) to end of (h extend i)
			where h.id = 500 and i.amount = 73700
			when h overlap i
			as of "now"`,
		`append to hist (id = 1) valid from "1/1/80" to "forever"`,
		`replace h (seq = h.seq + 1) where h.id = 4`,
		`modify r to hash on id where fillfactor = 50`,
		`create persistent interval t (a = i4, s = c8)`,
	}
	for _, src := range srcs {
		s1 := mustParse(t, src)
		s2 := mustParse(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("round trip changed:\n%s\n%s", s1, s2)
		}
	}
}

func TestLexerStrings(t *testing.T) {
	s := mustParse(t, `retrieve (x = "a\"b")`).(*RetrieveStmt)
	c := s.Targets[0].Expr.(*ConstExpr)
	if c.Val.S != `a"b` {
		t.Errorf("escaped string = %q", c.Val.S)
	}
	if !strings.Contains(s.String(), `a\"b`) {
		t.Logf("render: %s", s) // rendering detail, not required
	}
}
