// Package isam implements Ingres's ISAM access method: data pages sorted by
// key at `modify` time, a static multi-level directory above them, and an
// overflow chain per data page for tuples added afterwards.
//
// Directory entries are 6 bytes (4-byte key + 2-byte child page), giving a
// fanout of 168 — the geometry behind the paper's figures: 128 data pages
// fit under a single directory page at 100% loading (probe cost 2), while
// 256 data pages at 50% loading need two directory levels (probe cost 3).
// A sequential scan touches data and overflow pages only, never the
// directory, so Q04's cost at update count 0 is 128, one page less than the
// file size (Figure 7).
package isam

import (
	"encoding/binary"
	"fmt"
	"sort"

	"tdbms/internal/am"
	"tdbms/internal/buffer"
	"tdbms/internal/page"
)

// entrySize is the byte width of one directory entry.
const entrySize = 6

// Fanout is the number of directory entries per page.
const Fanout = (page.Size - page.HeaderSize) / entrySize

// Meta describes an ISAM file's fixed parameters; the catalog persists it.
type Meta struct {
	Width     int     // tuple width in bytes
	Key       am.Key  // key location within the tuple
	DataPages int     // number of primary data pages (0..DataPages-1)
	Root      page.ID // root directory page
	Height    int     // number of directory levels above the data pages
}

// DataPageCount computes the data page count chosen by modify for ntuples
// at the given fillfactor percentage.
func DataPageCount(ntuples, width, fillfactor int) int {
	perPage := page.Capacity(width) * fillfactor / 100
	if perPage < 1 {
		perPage = 1
	}
	return (ntuples + perPage - 1) / perPage
}

// File is an ISAM file over a buffered paged file.
type File struct {
	buf  *buffer.Buffered
	meta Meta
}

// Build sorts tuples by key and writes an ISAM file: data pages first at
// the occupancy implied by fillfactor, then the directory levels bottom-up,
// root last. The buffered file must be empty. Build copies the tuple slice
// headers but sorts in place.
func Build(buf *buffer.Buffered, width int, key am.Key, fillfactor int, tuples [][]byte) (*File, error) {
	if buf.NumPages() != 0 {
		return nil, fmt.Errorf("isam: build requires an empty file, have %d pages", buf.NumPages())
	}
	perPage := page.Capacity(width) * fillfactor / 100
	if perPage < 1 {
		perPage = 1
	}
	sort.SliceStable(tuples, func(i, j int) bool {
		return key.Extract(tuples[i]) < key.Extract(tuples[j])
	})

	// Data pages.
	type ent struct {
		key   int64
		child page.ID
	}
	var level []ent
	i := 0
	for i < len(tuples) {
		id, p, err := buf.Allocate()
		if err != nil {
			return nil, err
		}
		p.Format(width, page.KindData)
		first := key.Extract(tuples[i])
		for n := 0; n < perPage && i < len(tuples); n++ {
			if _, err := p.Insert(tuples[i]); err != nil {
				return nil, err
			}
			i++
		}
		level = append(level, ent{key: first, child: id})
	}
	if len(level) == 0 {
		// An empty relation still needs one data page and a root.
		id, p, err := buf.Allocate()
		if err != nil {
			return nil, err
		}
		p.Format(width, page.KindData)
		level = append(level, ent{key: 0, child: id})
	}
	dataPages := len(level)

	// Directory levels, bottom-up; the loop always runs at least once so
	// even a single data page gets a root directory page.
	height := 0
	for {
		var next []ent
		for lo := 0; lo < len(level); lo += Fanout {
			hi := lo + Fanout
			if hi > len(level) {
				hi = len(level)
			}
			id, p, err := buf.Allocate()
			if err != nil {
				return nil, err
			}
			p.Format(entrySize, page.KindDirectory)
			for j := lo; j < hi; j++ {
				writeEntry(p, j-lo, level[j].key, level[j].child)
			}
			p.SetAux(hi - lo)
			next = append(next, ent{key: level[lo].key, child: id})
		}
		height++
		level = next
		if len(level) == 1 {
			break
		}
	}
	if err := buf.Flush(); err != nil {
		return nil, err
	}
	meta := Meta{Width: width, Key: key, DataPages: dataPages, Root: level[0].child, Height: height}
	return &File{buf: buf, meta: meta}, nil
}

// New opens an existing ISAM file described by meta.
func New(buf *buffer.Buffered, meta Meta) *File {
	return &File{buf: buf, meta: meta}
}

func writeEntry(p *page.Page, i int, key int64, child page.ID) {
	off := page.HeaderSize + i*entrySize
	binary.LittleEndian.PutUint32(p[off:], uint32(int32(key)))
	binary.LittleEndian.PutUint16(p[off+4:], uint16(child))
}

func readEntry(p *page.Page, i int) (int64, page.ID) {
	off := page.HeaderSize + i*entrySize
	k := int64(int32(binary.LittleEndian.Uint32(p[off:])))
	c := page.ID(binary.LittleEndian.Uint16(p[off+4:]))
	return k, c
}

// Buffer exposes the underlying buffered file.
func (f *File) Buffer() *buffer.Buffered { return f.buf }

// Meta returns the file's parameters.
func (f *File) Meta() Meta { return f.meta }

// NumPages reports the file size in pages (data + directory + overflow).
func (f *File) NumPages() int { return f.buf.NumPages() }

// Keyed implements am.File.
func (f *File) Keyed() bool { return true }

// locate walks the directory from the root to the data page whose key range
// contains key (the last page whose low key is <= key). Inserts land here.
// Each directory page read goes through the single buffer frame, so
// interleaved probes re-read the root — the "fixed cost" of Figure 9.
func (f *File) locate(key int64) (page.ID, error) {
	cur := f.meta.Root
	for lvl := 0; lvl < f.meta.Height; lvl++ {
		p, err := f.buf.Fetch(cur)
		if err != nil {
			return page.Nil, err
		}
		n := p.Aux()
		idx := sort.Search(n, func(i int) bool {
			k, _ := readEntry(p, i)
			return k > key
		}) - 1
		if idx < 0 {
			idx = 0
		}
		_, cur = readEntry(p, idx)
	}
	return cur, nil
}

// probeRange computes the contiguous range of candidate data pages for a
// key range [lo, hi]. start is the leftmost page that can contain lo —
// duplicates of a page's low key may have been built onto the preceding
// page, the classic ISAM equal-key adjustment. stop is the last page whose
// low key is <= hi; openEnd is set when that bound reaches the end of the
// leaf directory page, in which case the scan falls back to walking forward
// until it sees a key greater than hi.
func (f *File) probeRange(lo, hi int64) (start, stop page.ID, openEnd bool, err error) {
	cur := f.meta.Root
	var p *page.Page
	for lvl := 0; lvl < f.meta.Height; lvl++ {
		p, err = f.buf.Fetch(cur)
		if err != nil {
			return 0, 0, false, err
		}
		n := p.Aux()
		// Descend toward the leftmost candidate at every level.
		idx := sort.Search(n, func(i int) bool {
			k, _ := readEntry(p, i)
			return k >= lo
		}) - 1
		if idx < 0 {
			idx = 0
		}
		if lvl == f.meta.Height-1 {
			_, start = readEntry(p, idx)
			last := sort.Search(n, func(i int) bool {
				k, _ := readEntry(p, i)
				return k > hi
			})
			if last == n {
				openEnd = true
			}
			if last > 0 {
				last--
			}
			_, stop = readEntry(p, last)
			return start, stop, openEnd, nil
		}
		_, cur = readEntry(p, idx)
	}
	// Height is always >= 1 (Build creates at least a root), so the loop
	// returns from the leaf level.
	return 0, 0, false, fmt.Errorf("isam: empty directory")
}

// Insert implements am.File: the tuple goes to the data page covering its
// key, or to that page's overflow chain.
func (f *File) Insert(tup []byte) (page.RID, error) {
	if len(tup) != f.meta.Width {
		return page.NilRID, fmt.Errorf("isam: tuple width %d, want %d", len(tup), f.meta.Width)
	}
	id, err := f.locate(f.meta.Key.Extract(tup))
	if err != nil {
		return page.NilRID, err
	}
	for {
		p, err := f.buf.Fetch(id)
		if err != nil {
			return page.NilRID, err
		}
		if p.HasRoom() {
			slot, err := p.Insert(tup)
			if err != nil {
				return page.NilRID, err
			}
			f.buf.MarkDirty()
			return page.RID{Page: id, Slot: uint16(slot)}, nil
		}
		next := p.Next()
		if next == page.Nil {
			newID := page.ID(f.buf.NumPages())
			p.SetNext(newID)
			f.buf.MarkDirty()
			gotID, np, err := f.buf.Allocate()
			if err != nil {
				// Undo the optimistic chain link so no later flush can
				// persist a pointer to a page that was never allocated.
				if tail, ferr := f.buf.Fetch(id); ferr == nil {
					tail.SetNext(page.Nil)
					f.buf.MarkDirty()
				}
				return page.NilRID, err
			}
			if gotID != newID {
				return page.NilRID, fmt.Errorf("isam: allocated page %d, expected %d", gotID, newID)
			}
			np.Format(f.meta.Width, page.KindData)
			slot, err := np.Insert(tup)
			if err != nil {
				return page.NilRID, err
			}
			return page.RID{Page: newID, Slot: uint16(slot)}, nil
		}
		id = next
	}
}

// Get implements am.File.
func (f *File) Get(rid page.RID) ([]byte, error) {
	p, err := f.buf.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	t, err := p.Get(int(rid.Slot))
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(t))
	copy(out, t)
	return out, nil
}

// Update implements am.File (in place; the key must not change).
func (f *File) Update(rid page.RID, tup []byte) error {
	p, err := f.buf.Fetch(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Replace(int(rid.Slot), tup); err != nil {
		return err
	}
	f.buf.MarkDirty()
	return nil
}

// Delete implements am.File.
func (f *File) Delete(rid page.RID) error {
	p, err := f.buf.Fetch(rid.Page)
	if err != nil {
		return err
	}
	if err := p.Delete(int(rid.Slot)); err != nil {
		return err
	}
	f.buf.MarkDirty()
	return nil
}

// Keyed access is cheaper than a scan, and the key order supports ranges.
func (f *File) Ordered() bool { return true }

// Probe implements am.File: directory walk plus the covering data page's
// chain, filtered by key.
func (f *File) Probe(key int64) am.Iterator {
	return &probeIter{f: f, lo: key, hi: key}
}

// ProbeRange implements am.File: directory walk to the first covering data
// page, then a walk across the covering pages and their chains.
func (f *File) ProbeRange(lo, hi int64) am.Iterator {
	if lo > hi {
		return am.Empty{}
	}
	return &probeIter{f: f, lo: lo, hi: hi}
}

// Scan implements am.File: data pages in key order, each followed by its
// overflow chain; the directory is not read.
func (f *File) Scan() am.Iterator {
	return &scanIter{f: f}
}

type probeIter struct {
	f          *File
	lo, hi     int64   // inclusive key range; equal for an equality probe
	primary    page.ID // data page whose chain is being walked
	cur        page.ID // current page within that chain
	stop       page.ID // last candidate data page
	openEnd    bool    // candidate run may extend past stop
	slot       int
	located    bool
	done       bool
	sawGreater bool // a key > hi was seen (keys beyond are greater too)
}

// Next implements am.Iterator. It walks each candidate data page and its
// overflow chain, from the leftmost candidate through the stop page
// computed from the directory. When the candidate run reached the end of a
// directory page (openEnd), it keeps scanning forward until a key greater
// than the range's upper bound proves no later page can match.
func (it *probeIter) Next() (page.RID, []byte, bool, error) {
	if it.done {
		return page.NilRID, nil, false, nil
	}
	if !it.located {
		start, stop, openEnd, err := it.f.probeRange(it.lo, it.hi)
		if err != nil {
			return page.NilRID, nil, false, err
		}
		it.primary, it.cur, it.stop, it.openEnd = start, start, stop, openEnd
		it.located = true
	}
	for {
		for it.cur != page.Nil {
			p, err := it.f.buf.Fetch(it.cur)
			if err != nil {
				return page.NilRID, nil, false, err
			}
			for it.slot < p.Slots() {
				s := it.slot
				it.slot++
				t, err := p.Get(s)
				if err == page.ErrBadSlot {
					continue
				}
				if err != nil {
					return page.NilRID, nil, false, err
				}
				k := it.f.meta.Key.Extract(t)
				if k > it.hi {
					it.sawGreater = true
				}
				if k < it.lo || k > it.hi {
					continue
				}
				out := make([]byte, len(t))
				copy(out, t)
				return page.RID{Page: it.cur, Slot: uint16(s)}, out, true, nil
			}
			it.cur = p.Next()
			it.slot = 0
		}
		// Finished one data page group.
		next := it.primary + 1
		if it.sawGreater || int(next) >= it.f.meta.DataPages ||
			(it.primary >= it.stop && !it.openEnd) {
			it.done = true
			return page.NilRID, nil, false, nil
		}
		it.primary, it.cur, it.slot = next, next, 0
	}
}

// NextBlock implements am.BlockIterator: the remaining in-range tuples of
// the candidate page under the cursor, one fetch for all of them.
func (it *probeIter) NextBlock(blk *am.Block, max int) (bool, error) {
	blk.Reset()
	if it.done {
		return false, nil
	}
	if max < 1 {
		max = 1
	}
	if !it.located {
		start, stop, openEnd, err := it.f.probeRange(it.lo, it.hi)
		if err != nil {
			return false, err
		}
		it.primary, it.cur, it.stop, it.openEnd = start, start, stop, openEnd
		it.located = true
	}
	for {
		for it.cur != page.Nil {
			p, err := it.f.buf.Fetch(it.cur)
			if err != nil {
				return false, err
			}
			for it.slot < p.Slots() && blk.Len() < max {
				s := it.slot
				it.slot++
				t, err := p.Get(s)
				if err == page.ErrBadSlot {
					continue
				}
				if err != nil {
					return false, err
				}
				k := it.f.meta.Key.Extract(t)
				if k > it.hi {
					it.sawGreater = true
				}
				if k < it.lo || k > it.hi {
					continue
				}
				blk.Add(page.RID{Page: it.cur, Slot: uint16(s)}, t)
			}
			if it.slot < p.Slots() {
				return true, nil // stopped at max; cursor stays on this page
			}
			it.cur = p.Next()
			it.slot = 0
			if blk.Len() > 0 {
				return true, nil
			}
		}
		// Finished one data page group.
		next := it.primary + 1
		if it.sawGreater || int(next) >= it.f.meta.DataPages ||
			(it.primary >= it.stop && !it.openEnd) {
			it.done = true
			return false, nil
		}
		it.primary, it.cur, it.slot = next, next, 0
	}
}

// Close implements am.Iterator, releasing the probe position.
func (it *probeIter) Close() error {
	it.done = true
	return nil
}

type scanIter struct {
	f       *File
	primary int
	cur     page.ID
	slot    int
	ahead   int
	started bool
	closed  bool
}

// SetReadahead implements am.ReadaheadHinter. Only the data pages are
// contiguous (pages 0..DataPages-1); overflow pages are chained anywhere
// past them, so prefetch is confined to the data-page region.
func (it *scanIter) SetReadahead(n int) { it.ahead = n }

// Next implements am.Iterator.
func (it *scanIter) Next() (page.RID, []byte, bool, error) {
	if it.closed {
		return page.NilRID, nil, false, nil
	}
	for {
		if !it.started {
			if it.primary >= it.f.meta.DataPages {
				return page.NilRID, nil, false, nil
			}
			it.cur = page.ID(it.primary)
			it.slot = 0
			it.started = true
		}
		for it.cur != page.Nil {
			p, err := it.fetch()
			if err != nil {
				return page.NilRID, nil, false, err
			}
			for it.slot < p.Slots() {
				s := it.slot
				it.slot++
				t, err := p.Get(s)
				if err == page.ErrBadSlot {
					continue
				}
				if err != nil {
					return page.NilRID, nil, false, err
				}
				out := make([]byte, len(t))
				copy(out, t)
				return page.RID{Page: it.cur, Slot: uint16(s)}, out, true, nil
			}
			it.cur = p.Next()
			it.slot = 0
		}
		it.primary++
		it.started = false
	}
}

// fetch brings the cursor's page in, prefetching ahead within the
// contiguous data-page region exactly as Next does.
func (it *scanIter) fetch() (*page.Page, error) {
	if ahead := it.ahead; ahead > 0 && int(it.cur) < it.f.meta.DataPages {
		if rest := it.f.meta.DataPages - int(it.cur) - 1; ahead > rest {
			ahead = rest
		}
		return it.f.buf.FetchAhead(it.cur, ahead)
	}
	return it.f.buf.Fetch(it.cur)
}

// NextBlock implements am.BlockIterator: the remaining tuples of the page
// under the cursor, one fetch for all of them.
func (it *scanIter) NextBlock(blk *am.Block, max int) (bool, error) {
	blk.Reset()
	if it.closed {
		return false, nil
	}
	if max < 1 {
		max = 1
	}
	for {
		if !it.started {
			if it.primary >= it.f.meta.DataPages {
				return false, nil
			}
			it.cur = page.ID(it.primary)
			it.slot = 0
			it.started = true
		}
		for it.cur != page.Nil {
			p, err := it.fetch()
			if err != nil {
				return false, err
			}
			for it.slot < p.Slots() && blk.Len() < max {
				s := it.slot
				it.slot++
				t, err := p.Get(s)
				if err == page.ErrBadSlot {
					continue
				}
				if err != nil {
					return false, err
				}
				blk.Add(page.RID{Page: it.cur, Slot: uint16(s)}, t)
			}
			if it.slot < p.Slots() {
				return true, nil // stopped at max; cursor stays on this page
			}
			it.cur = p.Next()
			it.slot = 0
			if blk.Len() > 0 {
				return true, nil
			}
		}
		it.primary++
		it.started = false
	}
}

// Close implements am.Iterator, releasing the scan position.
func (it *scanIter) Close() error {
	it.closed = true
	return nil
}
