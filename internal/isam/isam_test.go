package isam

import (
	"encoding/binary"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"tdbms/internal/am"
	"tdbms/internal/buffer"
	"tdbms/internal/storage"
)

const (
	versionedWidth = 116
	temporalWidth  = 124
	nTuples        = 1024
)

func key4() am.Key { return am.Key{Offset: 0, Width: 4} }

func mkTuple(width int, key int32) []byte {
	b := make([]byte, width)
	binary.LittleEndian.PutUint32(b, uint32(key))
	return b
}

func seqTuples(width, n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = mkTuple(width, int32(i+1))
	}
	return out
}

func build(t *testing.T, width, fillfactor, n int) *File {
	t.Helper()
	buf := buffer.New("i", storage.NewMem())
	f, err := Build(buf, width, key4(), fillfactor, seqTuples(width, n))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFanout(t *testing.T) {
	// 6-byte entries in 1010 usable bytes: fanout 168, which is what puts
	// 128 data pages under a single directory page (paper Figure 5/7).
	if Fanout != 168 {
		t.Errorf("Fanout = %d, want 168", Fanout)
	}
}

func TestGeometryMatchesPaper(t *testing.T) {
	// 100% loading: 128 data pages + 1 directory page = 129; height 1.
	f := build(t, versionedWidth, 100, nTuples)
	if f.meta.DataPages != 128 {
		t.Errorf("data pages (100%%) = %d, want 128", f.meta.DataPages)
	}
	if f.NumPages() != 129 {
		t.Errorf("file size (100%%) = %d, want 129", f.NumPages())
	}
	if f.meta.Height != 1 {
		t.Errorf("height (100%%) = %d, want 1", f.meta.Height)
	}

	// 50% loading: 256 data pages + 2 leaf directory pages + root = 259;
	// height 2 (probe cost 3 in Figure 7).
	g := build(t, versionedWidth, 50, nTuples)
	if g.meta.DataPages != 256 {
		t.Errorf("data pages (50%%) = %d, want 256", g.meta.DataPages)
	}
	if g.NumPages() != 259 {
		t.Errorf("file size (50%%) = %d, want 259", g.NumPages())
	}
	if g.meta.Height != 2 {
		t.Errorf("height (50%%) = %d, want 2", g.meta.Height)
	}

	// Static relation: 9 tuples/page at 100% -> 114 data + 1 dir = 115.
	s := build(t, 108, 100, nTuples)
	if s.NumPages() != 115 {
		t.Errorf("static file size = %d, want 115", s.NumPages())
	}
}

func TestProbeCostMatchesPaper(t *testing.T) {
	// Q02 at update count 0 costs 2 pages at 100% loading, 3 at 50%
	// (Figure 7): directory height + one data page.
	for _, tc := range []struct {
		ff, want int
	}{{100, 2}, {50, 3}} {
		f := build(t, versionedWidth, tc.ff, nTuples)
		f.Buffer().Invalidate()
		f.Buffer().ResetStats()
		it := f.Probe(500)
		n := 0
		for {
			_, _, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != 1 {
			t.Fatalf("ff=%d: probe found %d tuples, want 1", tc.ff, n)
		}
		if got := int(f.Buffer().Stats().Reads); got != tc.want {
			t.Errorf("ff=%d: probe read %d pages, want %d", tc.ff, got, tc.want)
		}
	}
}

func TestScanSkipsDirectory(t *testing.T) {
	// Q04 at update count 0 reads 128 pages while the file has 129
	// (Figure 7): the scan touches data pages only.
	f := build(t, versionedWidth, 100, nTuples)
	f.Buffer().Invalidate()
	f.Buffer().ResetStats()
	it := f.Scan()
	n := 0
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != nTuples {
		t.Fatalf("scan yielded %d tuples", n)
	}
	if got := int(f.Buffer().Stats().Reads); got != 128 {
		t.Errorf("scan read %d pages, want 128", got)
	}
}

func TestScanYieldsKeyOrder(t *testing.T) {
	f := build(t, versionedWidth, 50, nTuples)
	prev := int64(-1 << 62)
	it := f.Scan()
	for {
		_, tup, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		k := f.meta.Key.Extract(tup)
		if k < prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev = k
	}
}

func TestInsertGoesToCoveringPage(t *testing.T) {
	f := build(t, versionedWidth, 100, nTuples)
	// Page covering key 500 is full (8 tuples at 100%): a new version
	// chains an overflow page onto that data page.
	before := f.NumPages()
	rid, err := f.Insert(mkTuple(versionedWidth, 500))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumPages() != before+1 {
		t.Errorf("pages %d -> %d, want +1 overflow", before, f.NumPages())
	}
	// Probe must see both versions.
	it := f.Probe(500)
	n := 0
	for {
		_, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Errorf("probe found %d versions, want 2", n)
	}
	_ = rid
}

func TestSizeAtUC14MatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	// Figure 5: ISAM temporal relation at 100% loading reaches 3713 pages
	// at update count 14 (two new versions per tuple per update).
	f := build(t, temporalWidth, 100, nTuples)
	for round := 0; round < 14; round++ {
		for id := int32(1); id <= nTuples; id++ {
			f.Insert(mkTuple(temporalWidth, id))
			f.Insert(mkTuple(temporalWidth, id))
		}
	}
	if got := f.NumPages(); got != 3713 {
		t.Errorf("temporal ISAM at UC 14 = %d pages, want 3713", got)
	}

	// Rollback at 50%: one new version per tuple per update -> 2051 pages.
	g := build(t, versionedWidth, 50, nTuples)
	for round := 0; round < 14; round++ {
		for id := int32(1); id <= nTuples; id++ {
			g.Insert(mkTuple(versionedWidth, id))
		}
	}
	if got := g.NumPages(); got != 2051 {
		t.Errorf("rollback ISAM 50%% at UC 14 = %d pages, want 2051", got)
	}
}

func TestProbeBelowMinimumKey(t *testing.T) {
	f := build(t, versionedWidth, 100, nTuples)
	it := f.Probe(-5)
	_, _, ok, err := it.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("found tuple for key below minimum")
	}
}

func TestEmptyBuild(t *testing.T) {
	buf := buffer.New("i", storage.NewMem())
	f, err := Build(buf, 16, key4(), 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	// One empty data page plus a root.
	if f.NumPages() != 2 {
		t.Errorf("empty ISAM = %d pages, want 2", f.NumPages())
	}
	if _, err := f.Insert(mkTuple(16, 9)); err != nil {
		t.Fatal(err)
	}
	it := f.Probe(9)
	if _, _, ok, _ := it.Next(); !ok {
		t.Error("probe after insert into empty-built file failed")
	}
}

func TestGetUpdateDelete(t *testing.T) {
	f := build(t, versionedWidth, 100, 16)
	it := f.Probe(7)
	rid, tup, ok, err := it.Next()
	if err != nil || !ok {
		t.Fatalf("probe: ok=%v err=%v", ok, err)
	}
	tup[10] = 0x77
	if err := f.Update(rid, tup); err != nil {
		t.Fatal(err)
	}
	got, err := f.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if got[10] != 0x77 {
		t.Error("Update not visible via Get")
	}
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	it = f.Probe(7)
	if _, _, ok, _ := it.Next(); ok {
		t.Error("deleted tuple still probed")
	}
}

// Property: build from random keys, then every key probes to exactly its
// multiplicity and the scan is sorted.
func TestBuildProbeProperty(t *testing.T) {
	f := func(seed int64, n16 uint16, ffPick bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n16 % 600)
		ff := 100
		if ffPick {
			ff = 50
		}
		tuples := make([][]byte, n)
		want := map[int32]int{}
		for i := range tuples {
			k := int32(rng.Intn(200) - 100)
			tuples[i] = mkTuple(12, k)
			want[k]++
		}
		buf := buffer.New("i", storage.NewMem())
		isf, err := Build(buf, 12, key4(), ff, tuples)
		if err != nil {
			return false
		}
		for k, c := range want {
			it := isf.Probe(int64(k))
			got := 0
			for {
				_, tup, ok, err := it.Next()
				if err != nil {
					return false
				}
				if !ok {
					break
				}
				if key4().Extract(tup) != int64(k) {
					return false
				}
				got++
			}
			if got != c {
				return false
			}
		}
		var keys []int64
		it := isf.Scan()
		for {
			_, tup, ok, err := it.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			keys = append(keys, key4().Extract(tup))
		}
		return len(keys) == n && sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
