package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Tuple widths from Section 5.1 of the paper: 108 data bytes plus 0, 8, or
// 16 bytes of implicit time attributes.
const (
	staticWidth    = 108
	versionedWidth = 116 // rollback/historical: + transaction or valid interval
	temporalWidth  = 124 // temporal: + both intervals
)

func TestCapacityMatchesPaper(t *testing.T) {
	// "With 100% loading, there are 9 tuples per page in static relations,
	// and 8 tuples per page in rollback, historical, or temporal relations."
	if got := Capacity(staticWidth); got != 9 {
		t.Errorf("Capacity(108) = %d, want 9", got)
	}
	if got := Capacity(versionedWidth); got != 8 {
		t.Errorf("Capacity(116) = %d, want 8", got)
	}
	if got := Capacity(temporalWidth); got != 8 {
		t.Errorf("Capacity(124) = %d, want 8", got)
	}
}

func TestCapacityDegenerate(t *testing.T) {
	if got := Capacity(0); got != 0 {
		t.Errorf("Capacity(0) = %d, want 0", got)
	}
	if got := Capacity(-5); got != 0 {
		t.Errorf("Capacity(-5) = %d, want 0", got)
	}
	if got := Capacity(Size); got != 0 {
		t.Errorf("Capacity(%d) = %d, want 0", Size, got)
	}
}

func tup(width int, fill byte) []byte {
	b := make([]byte, width)
	for i := range b {
		b[i] = fill
	}
	return b
}

func TestInsertUntilFull(t *testing.T) {
	var p Page
	p.Format(temporalWidth, KindData)
	cap := Capacity(temporalWidth)
	for i := 0; i < cap; i++ {
		slot, err := p.Insert(tup(temporalWidth, byte(i)))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if slot != i {
			t.Fatalf("insert %d got slot %d", i, slot)
		}
	}
	if p.HasRoom() {
		t.Error("full page reports HasRoom")
	}
	if _, err := p.Insert(tup(temporalWidth, 0xFF)); err != ErrFull {
		t.Errorf("insert into full page: err = %v, want ErrFull", err)
	}
	if p.Live() != cap {
		t.Errorf("Live = %d, want %d", p.Live(), cap)
	}
}

func TestInsertWrongWidth(t *testing.T) {
	var p Page
	p.Format(100, KindData)
	if _, err := p.Insert(tup(99, 1)); err == nil {
		t.Error("insert of wrong-width tuple succeeded")
	}
}

func TestGetReplaceDelete(t *testing.T) {
	var p Page
	p.Format(8, KindData)
	s0, _ := p.Insert([]byte("aaaaaaaa"))
	s1, _ := p.Insert([]byte("bbbbbbbb"))

	got, err := p.Get(s1)
	if err != nil || !bytes.Equal(got, []byte("bbbbbbbb")) {
		t.Fatalf("Get(s1) = %q, %v", got, err)
	}
	if err := p.Replace(s0, []byte("cccccccc")); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(s0)
	if !bytes.Equal(got, []byte("cccccccc")) {
		t.Errorf("after Replace, Get = %q", got)
	}
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s0); err != ErrBadSlot {
		t.Errorf("Get(deleted) err = %v, want ErrBadSlot", err)
	}
	if err := p.Delete(s0); err != ErrBadSlot {
		t.Errorf("double Delete err = %v, want ErrBadSlot", err)
	}
	if err := p.Replace(s0, []byte("dddddddd")); err != ErrBadSlot {
		t.Errorf("Replace(deleted) err = %v, want ErrBadSlot", err)
	}
	if p.Live() != 1 {
		t.Errorf("Live = %d, want 1", p.Live())
	}
}

func TestDeletedSlotIsReused(t *testing.T) {
	var p Page
	p.Format(versionedWidth, KindData)
	cap := Capacity(versionedWidth)
	for i := 0; i < cap; i++ {
		p.Insert(tup(versionedWidth, byte(i)))
	}
	if err := p.Delete(3); err != nil {
		t.Fatal(err)
	}
	if !p.HasRoom() {
		t.Fatal("page with a dead slot reports no room")
	}
	slot, err := p.Insert(tup(versionedWidth, 0xAB))
	if err != nil {
		t.Fatal(err)
	}
	if slot != 3 {
		t.Errorf("reused slot = %d, want 3", slot)
	}
}

func TestOverflowLink(t *testing.T) {
	var p Page
	p.Format(10, KindData)
	if p.Next() != Nil {
		t.Errorf("fresh page Next = %d, want Nil", p.Next())
	}
	p.SetNext(42)
	if p.Next() != 42 {
		t.Errorf("Next = %d, want 42", p.Next())
	}
	p.SetNext(Nil)
	if p.Next() != Nil {
		t.Errorf("Next = %d, want Nil", p.Next())
	}
}

func TestKindAndAux(t *testing.T) {
	var p Page
	p.Format(6, KindDirectory)
	if p.Kind() != KindDirectory {
		t.Errorf("Kind = %d", p.Kind())
	}
	p.SetAux(168)
	if p.Aux() != 168 {
		t.Errorf("Aux = %d, want 168", p.Aux())
	}
	if p.Width() != 6 {
		t.Errorf("Width = %d, want 6", p.Width())
	}
}

func TestTuplesIteration(t *testing.T) {
	var p Page
	p.Format(4, KindData)
	p.Insert([]byte{1, 1, 1, 1})
	p.Insert([]byte{2, 2, 2, 2})
	p.Insert([]byte{3, 3, 3, 3})
	p.Delete(1)

	var seen []byte
	p.Tuples(func(slot int, tup []byte) bool {
		seen = append(seen, tup[0])
		return true
	})
	if !bytes.Equal(seen, []byte{1, 3}) {
		t.Errorf("iterated %v, want [1 3]", seen)
	}

	// Early stop.
	n := 0
	p.Tuples(func(slot int, tup []byte) bool { n++; return false })
	if n != 1 {
		t.Errorf("early-stop visited %d, want 1", n)
	}
}

// Property: any sequence of inserts up to capacity is fully recoverable.
func TestInsertGetRoundTripProperty(t *testing.T) {
	f := func(seed int64, width8 uint8) bool {
		width := int(width8%120) + 4
		rng := rand.New(rand.NewSource(seed))
		var p Page
		p.Format(width, KindData)
		var want [][]byte
		for i := 0; i < Capacity(width); i++ {
			b := make([]byte, width)
			rng.Read(b)
			if _, err := p.Insert(b); err != nil {
				return false
			}
			want = append(want, b)
		}
		for i, w := range want {
			got, err := p.Get(i)
			if err != nil || !bytes.Equal(got, w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: random interleavings of insert and delete never lose a live
// tuple and never exceed capacity.
func TestInsertDeleteInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const width = 16
		var p Page
		p.Format(width, KindData)
		live := map[int][]byte{}
		for op := 0; op < 200; op++ {
			if rng.Intn(2) == 0 && p.HasRoom() {
				b := make([]byte, width)
				rng.Read(b)
				slot, err := p.Insert(b)
				if err != nil {
					return false
				}
				if _, clobbered := live[slot]; clobbered {
					return false
				}
				live[slot] = b
			} else if len(live) > 0 {
				for slot := range live {
					if err := p.Delete(slot); err != nil {
						return false
					}
					delete(live, slot)
					break
				}
			}
			if p.Live() != len(live) {
				return false
			}
		}
		for slot, want := range live {
			got, err := p.Get(slot)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
