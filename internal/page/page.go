// Package page implements the fixed-size slotted page used by every access
// method in the system.
//
// The geometry mirrors the prototype measured by Ahn & Snodgrass (1986):
// pages are 1024 bytes, a 14-byte header is followed by a line-pointer
// array, and fixed-width tuples are stored from the end of the page
// downward. With this layout a page holds 9 static tuples of 108 bytes, or
// 8 tuples of any of the versioned types (116 or 124 bytes), exactly as
// reported in Section 5.1 of the paper.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the page size in bytes (Section 5.1: "The page size in our
// prototype is 1024 bytes").
const Size = 1024

// HeaderSize is the number of bytes reserved at the start of every page for
// the overflow link, line count, and flags.
const HeaderSize = 14

// linePointerSize is the per-tuple overhead of one line-pointer entry.
const linePointerSize = 2

// ID identifies a page within a single paged file. IDs are dense, starting
// at zero.
type ID int32

// Nil is the invalid page ID, used to terminate overflow chains.
const Nil ID = -1

// Header field offsets.
const (
	offNext  = 0  // int32: next page in the overflow chain, or Nil
	offCount = 4  // uint16: number of line pointers in use (including dead ones)
	offWidth = 6  // uint16: fixed tuple width this page was formatted for
	offFlags = 8  // uint16: page kind flags (kindData, kindDirectory, ...)
	offSpare = 10 // 2 bytes: auxiliary counter; 2 bytes: WAL LSN tag
)

// Page kind flags, informational; access methods set them so that a raw
// file dump is self-describing.
const (
	KindData      uint16 = 0
	KindDirectory uint16 = 1
	KindIndex     uint16 = 2
)

// ErrFull is returned by Insert when the page has no free slot.
var ErrFull = errors.New("page: full")

// ErrBadSlot is returned when a slot index is out of range or empty.
var ErrBadSlot = errors.New("page: bad slot")

// ErrCorrupt is returned when a page's header is structurally impossible —
// a width or line count that no Format/Insert sequence can produce. A torn
// or partially-written page surfaces as this error instead of an
// out-of-bounds panic deep in slot arithmetic.
var ErrCorrupt = errors.New("page: corrupt header")

// Page is a single 1024-byte page. The zero value is an unformatted page;
// call Format before use.
type Page [Size]byte

// Capacity reports how many tuples of the given width fit on one page.
func Capacity(width int) int {
	if width <= 0 {
		return 0
	}
	return (Size - HeaderSize) / (width + linePointerSize)
}

// Format initializes p as an empty page holding tuples of the given fixed
// width. Any previous content is discarded.
func (p *Page) Format(width int, kind uint16) {
	for i := range p {
		p[i] = 0
	}
	p.setNext(Nil)
	binary.LittleEndian.PutUint16(p[offWidth:], uint16(width))
	binary.LittleEndian.PutUint16(p[offFlags:], kind)
}

// Width returns the tuple width the page was formatted for.
func (p *Page) Width() int {
	return int(binary.LittleEndian.Uint16(p[offWidth:]))
}

// Kind returns the page kind flags.
func (p *Page) Kind() uint16 {
	return binary.LittleEndian.Uint16(p[offFlags:])
}

// Aux returns the page's auxiliary counter (spare header field). ISAM
// directory and secondary-index pages use it as their raw entry count.
func (p *Page) Aux() int {
	return int(binary.LittleEndian.Uint16(p[offSpare:]))
}

// SetAux stores the auxiliary counter.
func (p *Page) SetAux(n int) {
	binary.LittleEndian.PutUint16(p[offSpare:], uint16(n))
}

// LSNTag returns the low 16 bits of the log sequence number of the last
// WAL record that carried this page image, or 0 if the page was never
// logged. The tag lives in the two spare header bytes after Aux; it is a
// diagnostic fingerprint tying a page on disk back to the log record that
// produced it — the full 64-bit LSN is tracked by the buffer manager and
// the WAL itself. Widening the header for a full LSN would shrink
// Capacity and move every page count in the paper's figures.
func (p *Page) LSNTag() uint16 {
	return binary.LittleEndian.Uint16(p[offSpare+2:])
}

// SetLSNTag stores the page's LSN fingerprint.
func (p *Page) SetLSNTag(tag uint16) {
	binary.LittleEndian.PutUint16(p[offSpare+2:], tag)
}

// Next returns the next page in this page's overflow chain, or Nil.
func (p *Page) Next() ID {
	return ID(int32(binary.LittleEndian.Uint32(p[offNext:])))
}

// SetNext links the page to the next page of its overflow chain.
func (p *Page) SetNext(id ID) { p.setNext(id) }

func (p *Page) setNext(id ID) {
	binary.LittleEndian.PutUint32(p[offNext:], uint32(int32(id)))
}

// check validates the header invariants every slot operation relies on:
// the width fits a page and the line count never exceeds the capacity that
// width allows. Garbage headers (torn pages, unformatted data) fail here
// instead of panicking in slot arithmetic.
func (p *Page) check() error {
	w := p.Width()
	n := p.lineCount()
	if w > Size-HeaderSize {
		return ErrCorrupt
	}
	if w == 0 {
		if n != 0 {
			return ErrCorrupt
		}
		return nil
	}
	if n > Capacity(w) {
		return ErrCorrupt
	}
	return nil
}

// lineCount is the number of line pointers allocated so far (live or dead).
func (p *Page) lineCount() int {
	return int(binary.LittleEndian.Uint16(p[offCount:]))
}

func (p *Page) setLineCount(n int) {
	binary.LittleEndian.PutUint16(p[offCount:], uint16(n))
}

// linePtr returns the stored tuple offset for a slot (0 means dead/free).
func (p *Page) linePtr(slot int) int {
	return int(binary.LittleEndian.Uint16(p[HeaderSize+slot*linePointerSize:]))
}

func (p *Page) setLinePtr(slot, off int) {
	binary.LittleEndian.PutUint16(p[HeaderSize+slot*linePointerSize:], uint16(off))
}

// slotOffset computes the fixed data offset for a slot index.
func (p *Page) slotOffset(slot int) int {
	w := p.Width()
	return Size - (slot+1)*w
}

// Slots returns the number of slot positions in use (including dead slots);
// valid slot indexes are 0..Slots()-1.
func (p *Page) Slots() int { return p.lineCount() }

// Live reports the number of live tuples on the page.
func (p *Page) Live() int {
	if p.check() != nil {
		return 0
	}
	n := 0
	for i := 0; i < p.lineCount(); i++ {
		if p.linePtr(i) != 0 {
			n++
		}
	}
	return n
}

// HasRoom reports whether Insert would succeed. A corrupt page has no room;
// the subsequent Insert reports why.
func (p *Page) HasRoom() bool {
	if p.check() != nil {
		return false
	}
	c := Capacity(p.Width())
	if p.lineCount() < c {
		return true
	}
	for i := 0; i < p.lineCount(); i++ {
		if p.linePtr(i) == 0 {
			return true
		}
	}
	return false
}

// Insert stores tup in a free slot and returns the slot index.
func (p *Page) Insert(tup []byte) (int, error) {
	if err := p.check(); err != nil {
		return 0, err
	}
	w := p.Width()
	if len(tup) != w {
		return 0, fmt.Errorf("page: tuple width %d, page formatted for %d", len(tup), w)
	}
	// Reuse a dead slot first so that in-place delete/replace does not leak.
	n := p.lineCount()
	slot := -1
	for i := 0; i < n; i++ {
		if p.linePtr(i) == 0 {
			slot = i
			break
		}
	}
	if slot < 0 {
		if n >= Capacity(w) {
			return 0, ErrFull
		}
		slot = n
		p.setLineCount(n + 1)
	}
	off := p.slotOffset(slot)
	copy(p[off:off+w], tup)
	p.setLinePtr(slot, off)
	return slot, nil
}

// Get returns the tuple stored in slot. The returned slice aliases the page;
// callers that retain it across page evictions must copy it.
func (p *Page) Get(slot int) ([]byte, error) {
	if err := p.check(); err != nil {
		return nil, err
	}
	if slot < 0 || slot >= p.lineCount() || p.linePtr(slot) == 0 {
		return nil, ErrBadSlot
	}
	off := p.slotOffset(slot)
	return p[off : off+p.Width()], nil
}

// Replace overwrites the tuple in slot in place.
func (p *Page) Replace(slot int, tup []byte) error {
	if err := p.check(); err != nil {
		return err
	}
	if slot < 0 || slot >= p.lineCount() || p.linePtr(slot) == 0 {
		return ErrBadSlot
	}
	if len(tup) != p.Width() {
		return fmt.Errorf("page: tuple width %d, page formatted for %d", len(tup), p.Width())
	}
	off := p.slotOffset(slot)
	copy(p[off:off+p.Width()], tup)
	return nil
}

// Delete frees the slot. The space is reusable by a later Insert.
func (p *Page) Delete(slot int) error {
	if err := p.check(); err != nil {
		return err
	}
	if slot < 0 || slot >= p.lineCount() || p.linePtr(slot) == 0 {
		return ErrBadSlot
	}
	p.setLinePtr(slot, 0)
	return nil
}

// Tuples iterates over live slots in slot order, calling fn with the slot
// index and tuple bytes. The tuple slice aliases the page.
func (p *Page) Tuples(fn func(slot int, tup []byte) bool) {
	if p.check() != nil {
		return
	}
	for i := 0; i < p.lineCount(); i++ {
		if p.linePtr(i) == 0 {
			continue
		}
		off := p.slotOffset(i)
		if !fn(i, p[off:off+p.Width()]) {
			return
		}
	}
}
