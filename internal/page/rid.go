package page

import "fmt"

// RID addresses a single tuple: a page within a relation's file plus a slot
// on that page. Secondary indexes store RIDs (the paper's "tuple id").
type RID struct {
	Page ID
	Slot uint16
}

// NilRID is the invalid tuple address.
var NilRID = RID{Page: Nil}

// Valid reports whether the RID addresses a real page.
func (r RID) Valid() bool { return r.Page != Nil }

// String implements fmt.Stringer.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }
