#!/usr/bin/env sh
# The expanded tier-1 gate: build, standard vet, the repo's invariant
# checker (cmd/tdbvet), and the full test suite under the race detector.
# CI runs exactly this script; run it locally before sending a PR.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> tdbvet ./..."
go run ./cmd/tdbvet ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> all checks passed"
