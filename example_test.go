package tdbms_test

import (
	"fmt"
	"time"

	"tdbms"
)

// Example walks the four kinds of questions a temporal database answers:
// current state, valid-time history, a version scan, and a rollback.
func Example() {
	db := tdbms.MustOpen(tdbms.Options{
		Now: time.Date(1980, 1, 1, 9, 0, 0, 0, time.UTC),
	})
	exec := func(src string) *tdbms.Result {
		res, err := db.Exec(src)
		if err != nil {
			panic(err)
		}
		return res
	}

	exec(`create persistent interval emp (name = c20, salary = i4)`)
	exec(`range of e is emp`)
	exec(`append to emp (name = "ann", salary = 100)`)

	db.AdvanceClock(2 * time.Hour) // 11:00
	exec(`replace e (salary = 130) where e.name = "ann"`)
	db.AdvanceClock(2 * time.Hour) // 13:00

	now := exec(`retrieve (e.salary) when e overlap "now"`)
	fmt.Println("current salary:", now.Rows[0][0].Int())

	past := exec(`retrieve (e.salary) when e overlap "10:00 1/1/80"`)
	fmt.Println("salary at 10:00:", past.Rows[0][0].Int())

	history := exec(`retrieve (e.salary) where e.name = "ann" sort by salary`)
	fmt.Println("versions on record:", len(history.Rows))

	believed := exec(`retrieve (e.salary) as of "10:00 1/1/80"`)
	fmt.Println("salary the database showed at 10:00:", believed.Rows[0][0].Int())

	// Output:
	// current salary: 130
	// salary at 10:00: 100
	// versions on record: 2
	// salary the database showed at 10:00: 100
}

// Example_aggregates shows grouped aggregates over a temporal qualification.
func Example_aggregates() {
	db := tdbms.MustOpen(tdbms.Options{
		Now: time.Date(1980, 1, 1, 0, 0, 0, 0, time.UTC),
	})
	stmts := `
		create persistent interval sal (emp = c8, dept = c8, amount = i4)
		range of s is sal
		append to sal (emp = "a", dept = "ops", amount = 10)
		append to sal (emp = "b", dept = "ops", amount = 20)
		append to sal (emp = "c", dept = "lab", amount = 40)
	`
	if _, err := db.Exec(stmts); err != nil {
		panic(err)
	}
	res, err := db.Exec(`retrieve (d = s.dept, total = sum(s.amount by s.dept))
		when s overlap "now" sort by d`)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Printf("%s %d\n", row[0].Str(), row[1].Int())
	}
	// Output:
	// lab 40
	// ops 30
}
