// Package tdbms is a temporal database management system: a reimplementation
// of the TQuel prototype built on Ingres by Ahn & Snodgrass and measured in
// "Performance Evaluation of a Temporal Database Management System" (1986).
//
// It supports the four database types of the paper's taxonomy — static,
// rollback, historical, and temporal relations — queried and updated in
// TQuel, a superset of Quel with valid, when, and as-of clauses:
//
//	db := tdbms.Open(tdbms.Options{})
//	db.Exec(`create persistent interval emp (name = c20, salary = i4)`)
//	db.Exec(`append to emp (name = "ann", salary = 100)`)
//	db.Exec(`range of e is emp`)
//	res, _ := db.Exec(`retrieve (e.name, e.salary) when e overlap "now"`)
//
// Relations are stored on 1024-byte pages under heap, static-hash, or ISAM
// organizations (chosen with `modify`), with the paper's append-only
// version-chain update semantics. Every statement reports its cost in page
// I/Os under the one-buffer-per-relation policy, which is the metric the
// paper's benchmark (and this repository's benchmark harness) measures.
package tdbms

import (
	"fmt"
	"time"

	"tdbms/internal/core"
	"tdbms/internal/temporal"
	"tdbms/internal/tuple"
)

// Options configure a database.
type Options struct {
	// Dir stores relations in page files under this directory; empty keeps
	// everything in memory.
	Dir string
	// Now sets the initial logical clock. The zero value means the current
	// wall-clock time.
	Now time.Time
	// TwoLevelStore stores versioned relations with current versions in a
	// primary store and history in a separate history store (the Section 6
	// enhancement), making non-temporal queries independent of the update
	// count.
	TwoLevelStore bool
	// ClusteredHistory co-locates history versions of the same tuple.
	ClusteredHistory bool
	// BufferFrames sets the buffer frames per relation. Zero or one gives
	// the paper's measurement policy of Section 5.1.
	BufferFrames int
	// BatchSize sets the executor's batch capacity in rows. Zero picks
	// the default; a negative value selects the tuple-at-a-time executor.
	// Page counts are identical either way.
	BatchSize int
}

// DB is an open temporal database.
type DB struct {
	inner *core.Database
}

// Open creates a database. With a Dir whose catalog sidecar exists, the
// persisted relations are reattached (the logical clock resumes from the
// later of opts.Now and the saved clock).
func Open(opts Options) (*DB, error) {
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	inner, err := core.Open(core.Options{
		Dir:              opts.Dir,
		Now:              temporal.FromUnix(now.UTC()),
		TwoLevelStore:    opts.TwoLevelStore,
		ClusteredHistory: opts.ClusteredHistory,
		BufferFrames:     opts.BufferFrames,
		BatchSize:        opts.BatchSize,
	})
	if err != nil {
		return nil, err
	}
	return &DB{inner: inner}, nil
}

// MustOpen is Open for in-memory databases, which cannot fail.
func MustOpen(opts Options) *DB {
	if opts.Dir != "" {
		panic("tdbms: MustOpen is for in-memory databases; use Open with a directory")
	}
	db, err := Open(opts)
	if err != nil {
		panic(err)
	}
	return db
}

// Checkpoint flushes every buffer and persists the catalog of a
// disk-backed database.
func (db *DB) Checkpoint() error { return db.inner.Checkpoint() }

// Close checkpoints and releases every file. The DB must not be used
// afterwards.
func (db *DB) Close() error { return db.inner.Close() }

// Kind classifies result values.
type Kind int

// Value kinds.
const (
	Int Kind = iota
	Float
	String
	Time
)

// Value is one attribute value in a query result.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// Int returns the value as an integer (truncating floats).
func (v Value) Int() int64 {
	if v.kind == Float {
		return int64(v.f)
	}
	return v.i
}

// Float returns the value as a float.
func (v Value) Float() float64 {
	if v.kind == Float {
		return v.f
	}
	return float64(v.i)
}

// Time returns a temporal value as a UTC time. forever reports the
// distinguished "forever" timestamp of open-ended versions.
func (v Value) Time() (t time.Time, forever bool) {
	tt := temporal.Time(v.i)
	return tt.Unix(), tt.IsForever()
}

// String renders the value; temporal values use the second resolution.
func (v Value) String() string {
	switch v.kind {
	case Float:
		return fmt.Sprintf("%g", v.f)
	case String:
		return v.s
	case Time:
		return temporal.Format(temporal.Time(v.i), temporal.Second)
	default:
		return fmt.Sprintf("%d", v.i)
	}
}

// Str returns the value as a string attribute.
func (v Value) Str() string { return v.s }

func fromInternal(v tuple.Value) Value {
	switch v.Kind {
	case tuple.F4, tuple.F8:
		return Value{kind: Float, f: v.F}
	case tuple.Char:
		return Value{kind: String, s: v.S}
	case tuple.Temporal:
		return Value{kind: Time, i: v.I}
	default:
		return Value{kind: Int, i: v.I}
	}
}

// Result is the outcome of a statement.
type Result struct {
	// Columns names the output attributes of a retrieve (including the
	// implicit valid_from/valid_to columns of temporal results).
	Columns []string
	// Rows holds the retrieved tuples.
	Rows [][]Value
	// Affected counts tuples touched by DML.
	Affected int
	// InputPages and OutputPages are the statement's page I/O under the
	// one-buffer-per-relation policy — the paper's benchmark metric.
	InputPages  int64
	OutputPages int64
}

// Exec parses and executes one or more TQuel statements, returning the
// result of the last one.
func (db *DB) Exec(src string) (*Result, error) {
	res, err := db.inner.Exec(src)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Columns:     res.Cols,
		Affected:    res.Affected,
		InputPages:  res.Input,
		OutputPages: res.Output,
	}
	for _, row := range res.Rows {
		vals := make([]Value, len(row))
		for i, v := range row {
			vals[i] = fromInternal(v)
		}
		out.Rows = append(out.Rows, vals)
	}
	return out, nil
}

// Load bulk-inserts rows into a relation (the programmatic `copy from`).
// Each row holds Go values for the user attributes — int/int64, float64,
// string, or time.Time — or for the full stored schema including the
// implicit time attributes.
func (db *DB) Load(relation string, rows [][]any) (int, error) {
	conv := make([][]tuple.Value, len(rows))
	for i, row := range rows {
		conv[i] = make([]tuple.Value, len(row))
		for j, cell := range row {
			v, err := toInternal(cell)
			if err != nil {
				return 0, fmt.Errorf("tdbms: row %d column %d: %w", i, j, err)
			}
			conv[i][j] = v
		}
	}
	return db.inner.Load(relation, conv)
}

// Forever is the sentinel passed to Load for open-ended time attributes.
var Forever = temporal.Forever.Unix()

func toInternal(cell any) (tuple.Value, error) {
	switch c := cell.(type) {
	case int:
		return tuple.IntValue(int64(c)), nil
	case int32:
		return tuple.IntValue(int64(c)), nil
	case int64:
		return tuple.IntValue(c), nil
	case float64:
		return tuple.FloatValue(c), nil
	case string:
		return tuple.StrValue(c), nil
	case time.Time:
		return tuple.TemporalValue(int64(temporal.FromUnix(c.UTC()))), nil
	}
	return tuple.Value{}, fmt.Errorf("unsupported value type %T", cell)
}

// Now reports the database's logical clock.
func (db *DB) Now() time.Time { return db.inner.Clock().Now().Unix() }

// SetNow moves the logical clock, which stamps subsequent updates and
// resolves "now" in queries.
func (db *DB) SetNow(t time.Time) { db.inner.Clock().Set(temporal.FromUnix(t.UTC())) }

// AdvanceClock moves the logical clock forward.
func (db *DB) AdvanceClock(d time.Duration) { db.inner.Clock().Advance(int64(d / time.Second)) }

// RelationPages reports a relation's size in pages (the Figure 5 metric).
func (db *DB) RelationPages(name string) (int, error) { return db.inner.NumPages(name) }

// EnableTwoLevelStore converts an existing versioned relation to the
// two-level store of Section 6.
func (db *DB) EnableTwoLevelStore(name string, clustered bool) error {
	return db.inner.EnableTwoLevel(name, clustered)
}

// IOStats is the cumulative page I/O over all relations.
type IOStats struct {
	Reads, Writes, Hits int64
}

// Stats returns cumulative I/O counters since the last ResetStats.
func (db *DB) Stats() IOStats {
	s := db.inner.Stats()
	return IOStats{Reads: s.Reads, Writes: s.Writes, Hits: s.Hits}
}

// ResetStats zeroes the I/O counters.
func (db *DB) ResetStats() { db.inner.ResetStats() }

// InvalidateBuffers empties every buffer frame so the next query runs cold,
// as each of the paper's measurements did.
func (db *DB) InvalidateBuffers() error { return db.inner.InvalidateBuffers() }

// Relations lists the database's relations.
func (db *DB) Relations() []string { return db.inner.Catalog().List() }

// Explain describes how a retrieve statement would execute — the access
// path chosen per range variable and the join strategy — without running
// it.
func (db *DB) Explain(query string) (string, error) { return db.inner.Explain(query) }
