module tdbms

go 1.22
