package tdbms

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// BenchmarkMVCCWriters measures writer throughput at 1/2/4/GOMAXPROCS
// concurrent writer sessions in two shapes: "disjoint" gives every writer
// its own relation (the case per-relation latching should scale with
// cores), "overlapping" points every writer at one shared relation (the
// case that must serialize on the relation latch no matter what). Each
// statement is a hashed single-tuple replace on a temporal relation, so
// the work per statement is a probe plus one version-chain supersede.
//
// Unlike BENCH_session.json, the numbers here are wall-clock throughput —
// machine-dependent by design, recorded so the per-relation-latch engine
// can be compared against the database-wide-lock baseline on one machine.

type mvccBenchMetrics struct {
	Writers          int     `json:"writers"`
	StatementsPerSec float64 `json:"statements_per_sec,omitempty"`
	NsPerStatement   float64 `json:"ns_per_statement,omitempty"`
	ReaderNsPerOp    float64 `json:"reader_ns_per_op,omitempty"`
}

var (
	mvccBenchMu      sync.Mutex
	mvccBenchResults = map[string]mvccBenchMetrics{}
)

const mvccBenchRows = 128

// buildMVCCBenchDB opens an in-memory database with nrels hashed temporal
// relations named w0..w<nrels-1>, each loaded with mvccBenchRows tuples.
func buildMVCCBenchDB(b *testing.B, nrels int) *DB {
	b.Helper()
	db := MustOpen(Options{Now: time.Date(1980, 3, 1, 0, 0, 0, 0, time.UTC)})
	rows := make([][]any, mvccBenchRows)
	for i := range rows {
		rows[i] = []any{i, 0}
	}
	for r := 0; r < nrels; r++ {
		name := fmt.Sprintf("w%d", r)
		if _, err := db.Exec(fmt.Sprintf(`create persistent interval %s (id = i4, seq = i4)`, name)); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Load(name, rows); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec(fmt.Sprintf(`modify %s to hash on id where fillfactor = 100`, name)); err != nil {
			b.Fatal(err)
		}
	}
	db.AdvanceClock(time.Hour)
	return db
}

func mvccWriterCounts() []int {
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	return counts
}

func BenchmarkMVCCWriters(b *testing.B) {
	for _, mode := range []string{"disjoint", "overlapping"} {
		for _, n := range mvccWriterCounts() {
			b.Run(fmt.Sprintf("%s/writers-%d", mode, n), func(b *testing.B) {
				nrels := n
				if mode == "overlapping" {
					nrels = 1
				}
				db := buildMVCCBenchDB(b, nrels)
				defer db.Close()
				sessions := make([]*Session, n)
				for w := range sessions {
					rel := fmt.Sprintf("w%d", w%nrels)
					sessions[w] = db.Session(fmt.Sprintf("writer-%d", w))
					if _, err := sessions[w].Exec(fmt.Sprintf(`range of v is %s`, rel)); err != nil {
						b.Fatal(err)
					}
				}
				errs := make([]error, n)
				b.ResetTimer()
				var wg sync.WaitGroup
				for w, s := range sessions {
					wg.Add(1)
					go func(w int, s *Session) {
						defer wg.Done()
						// Writers stripe over distinct ids so overlapping
						// mode contends on the relation, never on one
						// version-chain head.
						for i := 0; i < b.N; i++ {
							id := (w + i*n) % mvccBenchRows
							q := fmt.Sprintf(`replace v (seq = v.seq + 1) where v.id = %d`, id)
							if _, err := s.Exec(q); err != nil {
								errs[w] = err
								return
							}
						}
					}(w, s)
				}
				wg.Wait()
				b.StopTimer()
				for w, err := range errs {
					if err != nil {
						b.Fatalf("writer %d: %v", w, err)
					}
				}
				stmts := float64(n) * float64(b.N)
				secs := b.Elapsed().Seconds()
				m := mvccBenchMetrics{
					Writers:          n,
					StatementsPerSec: stmts / secs,
					NsPerStatement:   float64(b.Elapsed().Nanoseconds()) / stmts,
				}
				b.ReportMetric(m.StatementsPerSec, "stmts/sec")
				mvccBenchMu.Lock()
				mvccBenchResults[fmt.Sprintf("MVCCWriters/%s/%d", mode, n)] = m
				mvccBenchMu.Unlock()
			})
		}
	}
}

// BenchmarkMVCCReaderWithWriter measures point-read latency in one session
// while another session continuously replaces tuples of a second relation.
// Under the database-wide statement lock every read waits for the writer's
// statements; under per-relation latching the relations are independent
// and the reader should be unaffected.
func BenchmarkMVCCReaderWithWriter(b *testing.B) {
	db := buildMVCCBenchDB(b, 2)
	defer db.Close()
	reader := db.Session("reader")
	if _, err := reader.Exec(`range of v is w0`); err != nil {
		b.Fatal(err)
	}
	writer := db.Session("writer")
	if _, err := writer.Exec(`range of v is w1`); err != nil {
		b.Fatal(err)
	}

	stop := make(chan struct{})
	var writerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			q := fmt.Sprintf(`replace v (seq = v.seq + 1) where v.id = %d`, i%mvccBenchRows)
			if _, err := writer.Exec(q); err != nil {
				writerErr = err
				return
			}
		}
	}()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := fmt.Sprintf(`retrieve (v.seq) where v.id = %d`, i%mvccBenchRows)
		res, err := reader.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1 {
			b.Fatalf("point read returned %d rows", len(res.Rows))
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	if writerErr != nil {
		b.Fatalf("background writer: %v", writerErr)
	}
	m := mvccBenchMetrics{
		Writers:       1,
		ReaderNsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
	}
	b.ReportMetric(m.ReaderNsPerOp, "readerNs/op")
	mvccBenchMu.Lock()
	mvccBenchResults["MVCCReaderWithWriter"] = m
	mvccBenchMu.Unlock()
}
