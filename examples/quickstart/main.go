// Quickstart: a ten-minute tour of the temporal DBMS.
//
// It creates a temporal relation (both transaction time and valid time),
// runs it through appends, replaces, and a delete, and then asks the three
// kinds of questions the paper's taxonomy distinguishes:
//
//   - snapshot:  what is true now?
//   - historical: what was true at time t (valid time)?
//   - rollback:   what did the database claim at time t (transaction time)?
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"tdbms"
)

func main() {
	start := time.Date(1980, 1, 1, 9, 0, 0, 0, time.UTC)
	db := tdbms.MustOpen(tdbms.Options{Now: start})

	must := func(src string) *tdbms.Result {
		res, err := db.Exec(src)
		if err != nil {
			log.Fatalf("%s:\n  %v", src, err)
		}
		return res
	}
	show := func(title string, res *tdbms.Result) {
		fmt.Printf("\n%s\n", title)
		for _, row := range res.Rows {
			for i, v := range row {
				if i > 0 {
					fmt.Print(" | ")
				}
				fmt.Printf("%-12s", v)
			}
			fmt.Println()
		}
		fmt.Printf("  (%d tuples, %d pages read)\n", len(res.Rows), res.InputPages)
	}

	// `create persistent interval` makes a temporal relation: persistent
	// adds transaction time, interval adds valid time (Figure 3).
	must(`create persistent interval emp (name = c20, title = c20, salary = i4)`)
	must(`range of e is emp`)

	// 9:00 — Ann is hired.
	must(`append to emp (name = "ann", title = "engineer", salary = 100)`)

	// 10:00 — Bob is hired.
	db.AdvanceClock(time.Hour)
	must(`append to emp (name = "bob", title = "technician", salary = 80)`)

	// 11:00 — Ann is promoted. A temporal replace closes the old version
	// and appends the new one; nothing is overwritten.
	db.AdvanceClock(time.Hour)
	must(`replace e (title = "manager", salary = 130) where e.name = "ann"`)

	// 12:00 — Bob leaves.
	db.AdvanceClock(time.Hour)
	must(`delete e where e.name = "bob"`)
	db.AdvanceClock(time.Hour) // it is now 13:00

	show(`Snapshot (when e overlap "now"): who works here now?`,
		must(`retrieve (e.name, e.title, e.salary) when e overlap "now"`))

	show(`Historical (when e overlap "10:30 1/1/80"): who worked here at 10:30?`,
		must(`retrieve (e.name, e.title) when e overlap "10:30 1/1/80"`))

	show(`Version scan (no clauses): Ann's full history as of now`,
		must(`retrieve (e.title, e.salary) where e.name = "ann"`))

	// Rollback: what did the database itself say at 09:30 — before Bob was
	// even recorded?
	show(`Rollback (as of "09:30 1/1/80"): what did the database show at 09:30?`,
		must(`retrieve (e.name, e.title) as of "09:30 1/1/80" when e overlap "09:30 1/1/80"`))

	// Every statement reports its cost in page I/Os — the metric the
	// paper's benchmark is built on. Empty the single buffer frame first so
	// the query runs cold, as each of the paper's measurements did.
	if err := db.InvalidateBuffers(); err != nil {
		log.Fatal(err)
	}
	res := must(`retrieve (e.name) when e overlap "now"`)
	fmt.Printf("\nThat last query read %d page(s); the engine counts I/O under\n", res.InputPages)
	fmt.Println("the paper's one-buffer-per-relation policy. Try ./cmd/tdbbench to")
	fmt.Println("regenerate every figure of the 1986 evaluation.")
}
