// Persistence: a disk-backed temporal database across process restarts.
//
// The prototype's storage model is append-only — "so write-once optical
// disks can be utilized" (Section 4) — which makes a temporal relation a
// natural persistent artifact: closing and reopening the database loses
// nothing, including the rollback history.
//
// This example simulates two sessions against the same directory: the
// first records project assignments (with one correction), the second
// reopens the database and audits what happened.
//
// Run with: go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"tdbms"
)

func must(db *tdbms.DB, src string) *tdbms.Result {
	res, err := db.Exec(src)
	if err != nil {
		log.Fatalf("%s:\n  %v", src, err)
	}
	return res
}

func main() {
	dir, err := os.MkdirTemp("", "tdbms-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// --- Session 1: record assignments. ---
	db, err := tdbms.Open(tdbms.Options{
		Dir: dir,
		Now: time.Date(1985, 9, 2, 9, 0, 0, 0, time.UTC),
	})
	if err != nil {
		log.Fatal(err)
	}
	must(db, `create persistent interval assign (eng = c12, project = c12)
	          range of a is assign`)
	must(db, `append to assign (eng = "holmes", project = "alpha")`)
	must(db, `append to assign (eng = "watson", project = "beta")`)

	db.AdvanceClock(2 * time.Hour)
	// A clerical error assigns Holmes to the wrong project...
	must(db, `replace a (project = "gamma") where a.eng = "holmes"`)
	db.AdvanceClock(30 * time.Minute)
	// ... fixed half an hour later.
	must(db, `replace a (project = "alpha") where a.eng = "holmes"`)

	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session 1: recorded assignments in %s and closed\n\n", dir)

	// --- Session 2: reopen and audit. ---
	db2, err := tdbms.Open(tdbms.Options{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	db2.AdvanceClock(24 * time.Hour)
	must(db2, `range of a is assign`)

	fmt.Println("session 2: current assignments after reopen:")
	res := must(db2, `retrieve (a.eng, a.project) when a overlap "now" sort by eng`)
	for _, r := range res.Rows {
		fmt.Printf("  %-8v -> %v\n", r[0], r[1])
	}

	fmt.Println("\nwhat the database said during the error (11:15, Sep 2):")
	res = must(db2, `retrieve (a.project) where a.eng = "holmes"
	                 as of "11:15 9/2/85" when a overlap "11:15 9/2/85"`)
	fmt.Printf("  holmes -> %v (the mistaken record, preserved)\n", res.Rows[0][0])

	fmt.Println("\nholmes's full valid-time history, as understood today:")
	res = must(db2, `retrieve (a.project) where a.eng = "holmes"`)
	for _, r := range res.Rows {
		fmt.Printf("  %-8v valid [%v .. %v)\n", r[0], r[1], r[2])
	}
}
