// Design versioning: a temporal database at benchmark scale, with the
// Section 6 performance enhancements.
//
// The paper's introduction points at "version management and design control
// in computer aided design" as a driver for temporal support. This example
// keeps a parts catalog as a temporal relation (both kinds of time), drives
// it through many engineering revisions, and then demonstrates the
// performance story of the paper on live data:
//
//  1. conventional storage degrades linearly with the update count,
//  2. the two-level store restores constant-time current-state queries,
//  3. a secondary index turns a non-key scan into a few page reads.
//
// Run with: go run ./examples/versioning
package main

import (
	"fmt"
	"log"
	"time"

	"tdbms"
)

const parts = 1024

func build() *tdbms.DB {
	db := tdbms.MustOpen(tdbms.Options{Now: time.Date(1985, 1, 7, 8, 0, 0, 0, time.UTC)})
	must(db, `create persistent interval part (pno = i4, weight = i4, rev = i4, drawing = c96)`)
	rows := make([][]any, parts)
	for i := range rows {
		rows[i] = []any{i + 1, (i * 37) % 5000, 0, "drawing-data"}
	}
	if _, err := db.Load("part", rows); err != nil {
		log.Fatal(err)
	}
	must(db, `modify part to hash on pno where fillfactor = 100`)
	must(db, `range of p is part`)
	return db
}

func must(db *tdbms.DB, src string) *tdbms.Result {
	res, err := db.Exec(src)
	if err != nil {
		log.Fatalf("%s:\n  %v", src, err)
	}
	return res
}

// revise performs one engineering change order across the whole catalog.
func revise(db *tdbms.DB, rounds int) {
	for r := 0; r < rounds; r++ {
		db.AdvanceClock(24 * time.Hour)
		must(db, `replace p (rev = p.rev + 1) where p.rev = p.rev`)
	}
	db.AdvanceClock(time.Hour)
}

// cold runs a query with cold buffers and returns its result.
func cold(db *tdbms.DB, q string) *tdbms.Result {
	if err := db.InvalidateBuffers(); err != nil {
		log.Fatal(err)
	}
	return must(db, q)
}

func main() {
	const currentPart = `retrieve (p.rev) where p.pno = 500 when p overlap "now"`
	const currentScan = `retrieve (p.pno) where p.weight = 3700 when p overlap "now"`

	fmt.Println("A parts catalog of 1024 temporal tuples, revised 8 times:")
	db := build()
	r := cold(db, currentPart)
	fmt.Printf("  before revisions: current-revision lookup reads %2d page(s)\n", r.InputPages)

	revise(db, 8)
	r = cold(db, currentPart)
	fmt.Printf("  after 8 revisions: the same lookup reads %2d page(s)\n", r.InputPages)
	fmt.Println("  (each revision adds two versions per part; the overflow chain")
	fmt.Println("   behind part 500's bucket is what the query wades through)")

	// Retroactive correction — the reason the full version history is kept:
	// revision 3's weight for part 500 was recorded wrong, and the fix is
	// itself recorded, not overwritten.
	db.AdvanceClock(time.Hour)
	must(db, `replace p (weight = 4242) where p.pno = 500`)
	db.AdvanceClock(time.Hour)
	hist := must(db, `retrieve (p.rev, p.weight) where p.pno = 500`)
	fmt.Printf("\nPart 500 has %d recorded versions (as of now); the latest:\n", len(hist.Rows))
	last := hist.Rows[len(hist.Rows)-1]
	fmt.Printf("  rev %v, weight %v\n", last[0], last[1])

	// Enhancement 1: the two-level store. Current versions move to a
	// primary store sized like the original relation; history moves aside.
	if err := db.EnableTwoLevelStore("part", false); err != nil {
		log.Fatal(err)
	}
	r = cold(db, currentPart)
	fmt.Printf("\nTwo-level store enabled: the lookup reads %2d page(s) again\n", r.InputPages)

	r = cold(db, currentScan)
	fmt.Printf("A current-state scan on the non-key weight attribute reads %d page(s)\n", r.InputPages)

	// Enhancement 2: a two-level hashed secondary index on weight.
	must(db, `index on part is part_weight (weight) with structure = hash with levels = 2`)
	r = cold(db, currentScan)
	fmt.Printf("With a 2-level hashed index on weight it reads %d page(s): one\n", r.InputPages)
	fmt.Println("index page plus one data page — Figure 10's bottom-right cell.")

	// The version history is still fully reachable through the history
	// store, including the clustered variant for fast version scans.
	vs := cold(db, `retrieve (p.rev) where p.pno = 500`)
	fmt.Printf("\nA version scan of part 500 still returns %d versions (%d pages).\n",
		len(vs.Rows), vs.InputPages)
}
