// Audit trail: rollback databases as a replacement for backups and logs.
//
// The paper's introduction motivates transaction time with error correction
// and audit trails: "support for error correction or audit trail
// necessitates costly maintenance of backups, checkpoints, journals or
// transaction logs to preserve past states." A rollback relation preserves
// every past state of the database automatically — `as of` reconstructs
// what the database said at any moment, including states later found to be
// wrong.
//
// The scenario: a small ledger of accounts receives a mistaken posting,
// which is corrected ten minutes later. The auditor can see the balance the
// bank acted on at any past moment, and the full trail of what was
// recorded when.
//
// Run with: go run ./examples/audittrail
package main

import (
	"fmt"
	"log"
	"time"

	"tdbms"
)

func main() {
	open := time.Date(1984, 6, 1, 9, 0, 0, 0, time.UTC)
	db := tdbms.MustOpen(tdbms.Options{Now: open})
	must := func(src string) *tdbms.Result {
		res, err := db.Exec(src)
		if err != nil {
			log.Fatalf("%s:\n  %v", src, err)
		}
		return res
	}
	at := func(t time.Time) string { return t.Format(`"15:04:05 1/2/2006"`) }

	// `create persistent` = a rollback relation: transaction time only.
	must(`create persistent accounts (acct = i4, owner = c16, balance = i4)`)
	must(`range of a is accounts`)

	// 09:00 — opening balances.
	must(`append to accounts (acct = 101, owner = "marlowe", balance = 1000)`)
	must(`append to accounts (acct = 102, owner = "spade", balance = 2500)`)

	// 10:00 — a clerk posts a deposit to the WRONG account: 102 instead
	// of 101.
	db.AdvanceClock(time.Hour)
	tMistake := db.Now()
	must(`replace a (balance = a.balance + 300) where a.acct = 102`)

	// 10:10 — the error is caught and corrected. The correction does not
	// erase the mistake: it supersedes it in transaction time.
	db.AdvanceClock(10 * time.Minute)
	must(`replace a (balance = a.balance - 300) where a.acct = 102`)
	must(`replace a (balance = a.balance + 300) where a.acct = 101`)

	// 11:00 — business as usual.
	db.AdvanceClock(50 * time.Minute)

	fmt.Println("Current balances:")
	res := must(`retrieve (a.acct, a.owner, a.balance)`)
	for _, r := range res.Rows {
		fmt.Printf("  %v  %-10v %v\n", r[0], r[1], r[2])
	}

	// What balance did the bank act on between 10:00 and 10:10? The
	// mistaken state is still there, addressable by transaction time.
	fmt.Println("\nBalance of account 102 as recorded at 10:05 (during the error):")
	res = must(`retrieve (a.balance) where a.acct = 102 as of ` + at(tMistake.Add(5*time.Minute)))
	fmt.Printf("  %v  <- the mistaken state, preserved\n", res.Rows[0][0])

	fmt.Println("\nBalance of account 102 as recorded at 09:30 (before the error):")
	res = must(`retrieve (a.balance) where a.acct = 102 as of ` + at(open.Add(30*time.Minute)))
	fmt.Printf("  %v\n", res.Rows[0][0])

	// The full audit trail of account 102: every state it ever had, with
	// the transaction interval during which each was current. `as of X
	// through Y` retrieves every version recorded in the window.
	fmt.Println("\nAudit trail of account 102 (every recorded state since opening):")
	res = must(`retrieve (a.balance, a.transaction_start, a.transaction_stop)
	            where a.acct = 102
	            as of ` + at(open) + ` through "now"`)
	for _, r := range res.Rows {
		fmt.Printf("  balance %-6v recorded [%v .. %v)\n", r[0], r[1], r[2])
	}

	// Updates never overwrite: the relation only grows, which is what lets
	// rollback databases exploit write-once optical disks (Section 4).
	pages, err := db.RelationPages("accounts")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nThe ledger occupies %d page(s); every change was an append.\n", pages)
}
