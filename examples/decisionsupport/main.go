// Decision support: historical queries and trend analysis.
//
// The paper's introduction notes that conventional DBMSs "cannot support
// historical queries about the past status, much less trend analysis which
// is essential for applications such as decision support systems". A
// historical relation records valid time — when facts were true in the
// modeled world — so the same relation answers "what is the price now?",
// "what was it last quarter?", and "how did it move?".
//
// The scenario: a price list and a headcount table evolve over 1985; the
// program reconstructs the state at a sequence of instants to print trends,
// and joins the two histories with a `when ... overlap` temporal join.
//
// Run with: go run ./examples/decisionsupport
package main

import (
	"fmt"
	"log"
	"time"

	"tdbms"
)

func main() {
	db := tdbms.MustOpen(tdbms.Options{Now: time.Date(1986, 1, 1, 0, 0, 0, 0, time.UTC)})
	must := func(src string) *tdbms.Result {
		res, err := db.Exec(src)
		if err != nil {
			log.Fatalf("%s:\n  %v", src, err)
		}
		return res
	}

	// `create interval` = a historical relation: valid time only. History
	// is loaded explicitly with the valid clause — valid time is about the
	// modeled world, not about when rows were typed in.
	must(`create interval prices (sku = c8, price = i4)`)
	must(`create interval headcount (dept = c8, staff = i4)`)
	must(`range of p is prices
	      range of h is headcount`)

	load := []string{
		`append to prices (sku = "widget", price = 40) valid from "1/1/85" to "4/1/85"`,
		`append to prices (sku = "widget", price = 46) valid from "4/1/85" to "9/1/85"`,
		`append to prices (sku = "widget", price = 52) valid from "9/1/85" to "forever"`,
		`append to prices (sku = "gizmo", price = 99) valid from "2/1/85" to "7/1/85"`,
		`append to prices (sku = "gizmo", price = 89) valid from "7/1/85" to "forever"`,
		`append to headcount (dept = "sales", staff = 12) valid from "1/1/85" to "6/1/85"`,
		`append to headcount (dept = "sales", staff = 17) valid from "6/1/85" to "forever"`,
	}
	for _, s := range load {
		must(s)
	}

	// Trend analysis: reconstruct the state at a sequence of instants.
	fmt.Println("Widget price by month, 1985:")
	for m := time.January; m <= time.December; m += 3 {
		at := fmt.Sprintf(`"%d/1/85"`, int(m))
		res := must(`retrieve (p.price) where p.sku = "widget" when p overlap ` + at)
		fmt.Printf("  %-10s %v\n", m, res.Rows[0][0])
	}

	// Historical join: which price regimes coexisted with which staffing
	// levels? The temporal join pairs versions whose validity overlaps, and
	// the default valid clause gives the intersection.
	fmt.Println("\nWidget price regimes vs. sales staffing (temporal join):")
	res := must(`retrieve (p.price, h.staff)
	             where p.sku = "widget" and h.dept = "sales"
	             when p overlap h`)
	for _, r := range res.Rows {
		fmt.Printf("  price %-4v staff %-4v during [%v .. %v)\n", r[0], r[1], r[2], r[3])
	}

	// Change detection: versions that ended in 1985 — each is a price
	// change with its effective span.
	fmt.Println("\nEvery widget price version (full history):")
	res = must(`retrieve (p.price) where p.sku = "widget"`)
	for _, r := range res.Rows {
		fmt.Printf("  %-4v valid [%v .. %v)\n", r[0], r[1], r[2])
	}

	// Revenue-style arithmetic over a reconstructed instant: a snapshot of
	// all prices on a chosen day, materialized into a new relation.
	must(`retrieve into snapshot_sep (sku = p.sku, price = p.price)
	      when p overlap "9/15/85"`)
	must(`range of s is snapshot_sep`)
	res = must(`retrieve (s.sku, s.price)`)
	fmt.Println("\nPrice list as of Sep 15, 1985 (materialized with retrieve into):")
	for _, r := range res.Rows {
		fmt.Printf("  %-8v %v\n", r[0], r[1])
	}

	// Aggregates over reconstructed instants: the average catalog price at
	// the start of each quarter — a one-line trend report.
	fmt.Println("\nAverage catalog price by quarter (aggregate over each instant):")
	for _, m := range []int{3, 6, 9, 12} {
		at := fmt.Sprintf(`"%d/1/85"`, m)
		res := must(`retrieve (mean = avg(p.price), n = count(p.sku)) when p overlap ` + at)
		fmt.Printf("  Q%d: %v across %v products\n", (m+2)/3, res.Rows[0][0], res.Rows[0][1])
	}

	// Grouped aggregates: per-product version counts over the whole history.
	fmt.Println("\nPrice changes per product (grouped aggregate over the full history):")
	res = must(`retrieve (sku = p.sku, versions = count(p.price by p.sku)) sort by sku`)
	for _, r := range res.Rows {
		fmt.Printf("  %-8v %v versions\n", r[0], r[1])
	}
}
