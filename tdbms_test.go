package tdbms

import (
	"testing"
	"time"
)

func jan1980() time.Time { return time.Date(1980, 1, 1, 0, 0, 0, 0, time.UTC) }

func TestPublicAPIQuickstart(t *testing.T) {
	db := MustOpen(Options{Now: jan1980()})
	steps := []string{
		`create persistent interval emp (name = c20, salary = i4)`,
		`append to emp (name = "ann", salary = 100)`,
		`range of e is emp`,
	}
	for _, s := range steps {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	db.AdvanceClock(time.Hour)
	if _, err := db.Exec(`replace e (salary = 120) where e.name = "ann"`); err != nil {
		t.Fatal(err)
	}
	db.AdvanceClock(time.Hour)

	res, err := db.Exec(`retrieve (e.salary) when e overlap "now"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 120 {
		t.Fatalf("rows: %v", res.Rows)
	}
	// The result carries validity columns.
	if len(res.Columns) != 3 {
		t.Fatalf("columns: %v", res.Columns)
	}
	vf, forever := res.Rows[0][1].Time()
	if forever || !vf.Equal(jan1980().Add(time.Hour)) {
		t.Errorf("valid_from = %v (forever=%v)", vf, forever)
	}
	if _, forever := res.Rows[0][2].Time(); !forever {
		t.Error("valid_to should be forever")
	}

	// Time travel via valid time.
	res, err = db.Exec(`retrieve (e.salary) when e overlap "00:30 1/1/80"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 100 {
		t.Fatalf("past rows: %v", res.Rows)
	}
}

func TestPublicAPILoadAndStats(t *testing.T) {
	db := MustOpen(Options{Now: jan1980()})
	if _, err := db.Exec(`create persistent r (id = i4, v = c4)`); err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, 100)
	for i := range rows {
		rows[i] = []any{i + 1, "x"}
	}
	n, err := db.Load("r", rows)
	if err != nil || n != 100 {
		t.Fatalf("Load: %d, %v", n, err)
	}
	if _, err := db.Exec(`modify r to hash on id where fillfactor = 100`); err != nil {
		t.Fatal(err)
	}
	pages, err := db.RelationPages("r")
	if err != nil || pages == 0 {
		t.Fatalf("RelationPages: %d, %v", pages, err)
	}
	db.ResetStats()
	db.InvalidateBuffers()
	if _, err := db.Exec(`range of x is r retrieve (x.v) where x.id = 42`); err != nil {
		t.Fatal(err)
	}
	if got := db.Stats().Reads; got != 1 {
		t.Errorf("hashed probe reads = %d, want 1", got)
	}
	got := db.Relations()
	if len(got) != 1 || got[0] != "r" {
		t.Errorf("Relations = %v", got)
	}
}

func TestPublicAPIErrors(t *testing.T) {
	db := MustOpen(Options{})
	if _, err := db.Exec(`retrieve (x.a)`); err == nil {
		t.Error("bad query succeeded")
	}
	if _, err := db.Load("nosuch", [][]any{{1}}); err == nil {
		t.Error("Load into missing relation succeeded")
	}
	if _, err := db.Exec(`create r (a = i4)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Load("r", [][]any{{struct{}{}}}); err == nil {
		t.Error("Load with unsupported type succeeded")
	}
	if err := db.EnableTwoLevelStore("r", false); err == nil {
		t.Error("two-level store on a static relation succeeded")
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, Now: jan1980()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`create persistent interval emp (name = c12, salary = i4)
	                      range of e is emp
	                      append to emp (name = "ann", salary = 100)`); err != nil {
		t.Fatal(err)
	}
	db.AdvanceClock(time.Hour)
	if _, err := db.Exec(`replace e (salary = 130) where e.name = "ann"`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	res, err := db2.Exec(`range of e is emp
	                      retrieve (e.salary) when e overlap "now"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 130 {
		t.Fatalf("after reopen: %v", res.Rows)
	}
	res, err = db2.Exec(`retrieve (e.salary) when e overlap "00:30 1/1/80"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 100 {
		t.Fatalf("history after reopen: %v", res.Rows)
	}
}

func TestAggregatesAndSortViaAPI(t *testing.T) {
	db := MustOpen(Options{Now: jan1980()})
	if _, err := db.Exec(`create r (a = i4)
	                      range of x is r
	                      append to r (a = 3)
	                      append to r (a = 1)
	                      append to r (a = 2)`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`retrieve (n = count(x.a), s = sum(x.a))`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 || res.Rows[0][1].Int() != 6 {
		t.Fatalf("aggregates: %v", res.Rows[0])
	}
	res, err = db.Exec(`retrieve (x.a) sort by a desc`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int() != 3 || res.Rows[2][0].Int() != 1 {
		t.Fatalf("sort: %v", res.Rows)
	}
}

func TestValueKinds(t *testing.T) {
	db := MustOpen(Options{Now: jan1980()})
	if _, err := db.Exec(`create r (i = i4, f = f8, s = c8)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`append to r (i = 7, f = 2.5, s = "hey")`); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(`range of x is r retrieve (x.i, x.f, x.s)`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].Kind() != Int || row[0].Int() != 7 {
		t.Errorf("int: %v", row[0])
	}
	if row[1].Kind() != Float || row[1].Float() != 2.5 {
		t.Errorf("float: %v", row[1])
	}
	if row[2].Kind() != String || row[2].Str() != "hey" {
		t.Errorf("string: %v", row[2])
	}
	if row[0].Float() != 7 || row[1].Int() != 2 {
		t.Errorf("conversions: %v %v", row[0].Float(), row[1].Int())
	}
}
