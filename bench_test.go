package tdbms

// One testing.B benchmark per table/figure of the paper's evaluation.
// Each iteration regenerates the figure's measurements through the full
// engine (workload build, evolution, cold query runs) and reports the
// headline page counts as custom metrics, so `go test -bench .` both
// exercises the system end to end and reprints the numbers the paper
// reports. `cmd/tdbbench` renders the same data as full tables.

import (
	"fmt"
	"testing"
	"time"

	"tdbms/internal/bench"
)

// benchMaxUC matches the paper's reporting point (update count 14).
const benchMaxUC = 14

func runSeries(b *testing.B, t bench.DBType, loading int) *bench.Series {
	b.Helper()
	s, err := bench.Run(t, loading, benchMaxUC, nil)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkFigure5 regenerates the space-requirements table: relation sizes
// and growth rates across the eight databases.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSeries(b, bench.Temporal, 100)
		r := runSeries(b, bench.Rollback, 50)
		if i == b.N-1 {
			b.ReportMetric(float64(s.SizeH[benchMaxUC]), "pages/temporalH_uc14")
			b.ReportMetric(float64(s.SizeI[benchMaxUC]), "pages/temporalI_uc14")
			b.ReportMetric(float64(r.SizeH[benchMaxUC]), "pages/rollback50H_uc14")
		}
	}
}

// BenchmarkFigure6 regenerates the per-update-count input costs of the
// temporal database with 100% loading.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := runSeries(b, bench.Temporal, 100)
		if i == b.N-1 {
			b.ReportMetric(float64(s.Cost["Q01"][benchMaxUC].Input), "pages/Q01_uc14")
			b.ReportMetric(float64(s.Cost["Q07"][benchMaxUC].Input), "pages/Q07_uc14")
			b.ReportMetric(float64(s.Cost["Q11"][benchMaxUC].Input), "pages/Q11_uc14")
		}
	}
}

// BenchmarkFigure7 regenerates the four-database comparison at update
// counts 0 and 14 (here: the two extremes, static and temporal).
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		st := runSeries(b, bench.Static, 100)
		tp := runSeries(b, bench.Temporal, 100)
		if i == b.N-1 {
			b.ReportMetric(float64(st.Cost["Q07"][0].Input), "pages/staticQ07")
			b.ReportMetric(float64(tp.Cost["Q07"][0].Input), "pages/temporalQ07_uc0")
			b.ReportMetric(float64(tp.Cost["Q07"][benchMaxUC].Input), "pages/temporalQ07_uc14")
		}
	}
}

// BenchmarkFigure8 regenerates the growth-graph series: the temporal/100%
// and rollback/50% databases (the latter shows the jagged overflow-filling
// pattern).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tp := runSeries(b, bench.Temporal, 100)
		rb := runSeries(b, bench.Rollback, 50)
		if i == b.N-1 {
			b.ReportMetric(float64(tp.Cost["Q09"][benchMaxUC].Input), "pages/temporalQ09_uc14")
			b.ReportMetric(float64(rb.Cost["Q09"][benchMaxUC].Input), "pages/rollback50Q09_uc14")
		}
	}
}

// BenchmarkFigure9 regenerates the growth-rate analysis: the rate is the
// loading factor for rollback databases and twice that for temporal ones,
// independent of query and access method.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tp := runSeries(b, bench.Temporal, 100)
		rb := runSeries(b, bench.Rollback, 50)
		if i == b.N-1 {
			tr := bench.GrowthRates(tp)
			rr := bench.GrowthRates(rb)
			b.ReportMetric(tr["Q07"], "rate/temporal100")
			b.ReportMetric(rr["Q07"], "rate/rollback50")
		}
	}
}

// BenchmarkFigure10 regenerates the enhancements table: the two-level store
// and the secondary-index organizations.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFigure10(benchMaxUC, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.ConvN["Q07"]), "pages/conventionalQ07")
			b.ReportMetric(float64(r.Simple["Q07"]), "pages/twolevelQ07")
			b.ReportMetric(float64(r.Clustered["Q01"]), "pages/clusteredQ01")
			b.ReportMetric(float64(r.Idx["2-level hash"]["Q08"]), "pages/idx2hashQ08")
		}
	}
}

// BenchmarkNonUniform regenerates the Section 5.4 experiment: repeated
// updates of a single tuple leave the weighted-average growth rate at the
// uniform value.
func BenchmarkNonUniform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunNonUniform(2, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.HotCost[1]), "pages/hotAccess_uc1")
			b.ReportMetric(r.Weighted[1], "pages/weightedAvg_uc1")
			b.ReportMetric(r.Rate[len(r.Rate)-1], "rate/weighted")
		}
	}
}

// BenchmarkAblationAccessMethods regenerates the access-method ablation:
// hash vs. ISAM vs. B-tree for a temporal relation (the Section 6
// discussion, measured).
func BenchmarkAblationAccessMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunAccessAblation(benchMaxUC, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Probe["hash"][benchMaxUC]), "pages/hashVersionScan")
			b.ReportMetric(float64(r.Probe["btree"][benchMaxUC]), "pages/btreeVersionScan")
			b.ReportMetric(float64(r.Size["btree"][benchMaxUC]), "pages/btreeSize")
		}
	}
}

// BenchmarkAblationLoading regenerates the loading-factor crossover.
func BenchmarkAblationLoading(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunLoadingAblation(benchMaxUC, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Cost["Q10"][100][0]), "pages/Q10ff100_uc0")
			b.ReportMetric(float64(r.Cost["Q10"][50][0]), "pages/Q10ff50_uc0")
			b.ReportMetric(float64(r.Cost["Q10"][100][benchMaxUC]), "pages/Q10ff100_uc14")
			b.ReportMetric(float64(r.Cost["Q10"][50][benchMaxUC]), "pages/Q10ff50_uc14")
		}
	}
}

// BenchmarkAblationBuffers regenerates the buffer-frame sensitivity
// experiment (the influence the paper's one-frame policy excluded).
func BenchmarkAblationBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.RunBufferAblation(4, []int{1, 64}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(float64(r.Cost["Q10"][0]), "pages/Q10_1frame")
			b.ReportMetric(float64(r.Cost["Q10"][1]), "pages/Q10_64frames")
		}
	}
}

// --- engine micro-benchmarks ---

func buildAPIBench(b *testing.B, n int) *DB {
	b.Helper()
	db := MustOpen(Options{Now: time.Date(1980, 1, 1, 0, 0, 0, 0, time.UTC)})
	if _, err := db.Exec(`create persistent interval r (id = i4, amount = i4, seq = i4, string = c96)`); err != nil {
		b.Fatal(err)
	}
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{i + 1, (i % 97) * 100, 0, "payload"}
	}
	if _, err := db.Load("r", rows); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`modify r to hash on id where fillfactor = 100
	                      range of x is r`); err != nil {
		b.Fatal(err)
	}
	return db
}

// BenchmarkHashedAccess measures the Q01/Q05 access path: a keyed probe of
// a hashed relation through the full TQuel engine.
func BenchmarkHashedAccess(b *testing.B) {
	db := buildAPIBench(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`retrieve (x.seq) where x.id = 500`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialScan measures the Q07 access path: a full scan with a
// non-key selection.
func BenchmarkSequentialScan(b *testing.B) {
	db := buildAPIBench(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(`retrieve (x.seq) where x.amount = 4200 when x overlap "now"`); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTemporalReplace measures the Section 4 update path: a temporal
// replace writes a closed version, a marker, and the new version.
func BenchmarkTemporalReplace(b *testing.B) {
	db := buildAPIBench(b, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.AdvanceClock(time.Second)
		stmt := fmt.Sprintf(`replace x (seq = x.seq + 1) where x.id = %d`, i%1024+1)
		if _, err := db.Exec(stmt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures TQuel parsing of the paper's most complex query
// (Figure 2).
func BenchmarkParse(b *testing.B) {
	db := MustOpen(Options{})
	if _, err := db.Exec(`create persistent interval ha (id = i4, seq = i4)
		create persistent interval ia (id = i4, seq = i4, amount = i4)
		range of h is ha
		range of i is ia`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := db.Exec(`retrieve (h.id, h.seq, i.id, i.seq, i.amount)
			valid from start of (h overlap i) to end of (h extend i)
			where h.id = 500 and i.amount = 73700
			when h overlap i
			as of "1981"`)
		if err != nil {
			b.Fatal(err)
		}
	}
}
