package tdbms

import (
	"time"

	"tdbms/internal/core"
	"tdbms/internal/temporal"
)

// Session is an independent execution context on a shared database: its own
// range-variable table, its own default "now", and its own I/O statistics.
// Sessions execute concurrently with each other — each statement latches
// only the relations it names (shared for reads, exclusive for writes), so
// writers on different relations proceed in parallel and readers never
// wait for a writer of an unrelated relation. Writers racing one version
// chain are resolved first-updater-wins; see SetConflictRetry.
//
//	db := tdbms.MustOpen(tdbms.Options{})
//	db.Exec(`create interval emp (name = c20, salary = i4)`)
//
//	s1, s2 := db.Session("reporting"), db.Session("audit")
//	s1.Exec(`range of e is emp`)        // bindings are private to s1
//	s2.Exec(`range of x is emp`)        // ...and to s2
//	res, _ := s1.Exec(`retrieve (e.name) where e.salary > 100`)
//
// A Session itself is not safe for concurrent use; run each session from
// one goroutine (or add your own serialization) and use one session per
// concurrent caller.
type Session struct {
	conn *core.Conn
}

// Session opens a new session on the database. name is a display label;
// empty picks "session-<n>". Sessions are cheap: they share every page and
// buffer frame with the rest of the database.
func (db *DB) Session(name string) *Session {
	return &Session{conn: db.inner.NewSession(name)}
}

// Name returns the session's display name.
func (s *Session) Name() string { return s.conn.Name() }

// Exec parses and executes one or more TQuel statements in this session,
// returning the result of the last one. Range declarations bind variables
// in this session only.
func (s *Session) Exec(src string) (*Result, error) {
	res, err := s.conn.Exec(src)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Columns:     res.Cols,
		Affected:    res.Affected,
		InputPages:  res.Input,
		OutputPages: res.Output,
	}
	for _, row := range res.Rows {
		vals := make([]Value, len(row))
		for i, v := range row {
			vals[i] = fromInternal(v)
		}
		out.Rows = append(out.Rows, vals)
	}
	return out, nil
}

// Explain runs a retrieve in this session and describes the plan it
// executed, with per-operator page I/O.
func (s *Session) Explain(query string) (string, error) { return s.conn.Explain(query) }

// Stats returns the page I/O charged to this session since its creation or
// the last ResetStats. Summed over every session (plus the default session
// behind DB.Exec), session stats account for exactly the database-wide
// counters of DB.Stats.
func (s *Session) Stats() IOStats {
	st := s.conn.Stats()
	return IOStats{Reads: st.Reads, Writes: st.Writes, Hits: st.Hits}
}

// ResetStats zeroes this session's counters (the shared counters of
// DB.Stats are unaffected).
func (s *Session) ResetStats() { s.conn.ResetStats() }

// SetBufferPolicy opts this session out of the paper's one-frame-per-
// relation buffer policy for its own reads: an LRU pool of frames frames
// per relation, with readahead pages of sequential-scan prefetch. Other
// sessions and the shared engine default are unaffected. Values below the
// minimum are normalized (at least one frame, non-negative readahead).
func (s *Session) SetBufferPolicy(frames, readahead int) {
	s.conn.SetBufferPolicy(frames, readahead)
}

// ClearBufferPolicy removes the session's buffer-policy override; the
// session follows the database default again (one frame, no readahead,
// unless the database was opened with pooled Options).
func (s *Session) ClearBufferPolicy() { s.conn.ClearBufferPolicy() }

// SetBatchSize overrides the executor batch size for this session's
// retrieves: rows > 0 exchanges batches of that many rows between
// operators, rows == 0 asks for the engine default, and rows < 0 selects
// the tuple-at-a-time executor. Both executors read exactly the same
// pages in the same order — the setting trades per-tuple interpretation
// overhead, never I/O, so reported page counts are identical either way.
func (s *Session) SetBatchSize(rows int) { s.conn.SetBatchSize(rows) }

// ClearBatchSize removes the session's batch-size override; the session
// follows the database default again.
func (s *Session) ClearBatchSize() { s.conn.ClearBatchSize() }

// SetNow gives the session its own "now" without moving the shared clock:
// queries and updates in this session see the database as of t.
func (s *Session) SetNow(t time.Time) { s.conn.SetNow(temporal.FromUnix(t.UTC())) }

// ClearNow removes the session's as-of override; the session follows the
// database clock again.
func (s *Session) ClearNow() { s.conn.ClearNow() }

// Now reports the session's default "now" — the as-of override if one is
// set, otherwise the database clock.
func (s *Session) Now() time.Time { return s.conn.Now().Unix() }

// ErrConflict is reported (wrapped) by a modification statement that lost a
// first-updater-wins race, when the session has opted out of automatic
// retry with SetConflictRetry(false). errors.Is(err, ErrConflict) tests
// for it.
var ErrConflict = core.ErrConflict

// SetConflictRetry chooses what happens when one of this session's
// modification statements finds a version-chain head moved by another
// writer after the statement's snapshot was taken. With retry true (the
// default), the statement transparently refreshes its snapshot and
// reapplies — every caller eventually succeeds. With retry false, the
// statement fails with an error wrapping ErrConflict and leaves the
// relation untouched, for callers that want optimistic-concurrency
// semantics.
func (s *Session) SetConflictRetry(retry bool) { s.conn.SetConflictRetry(retry) }
