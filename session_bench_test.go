package tdbms

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"testing"
	"time"
)

// BenchmarkConcurrentSessions measures the session layer's scaling shape:
// the same fixed query mix driven by 1, 4, and 16 sessions against one
// shared database. Wall-clock time is reported by the benchmark framework
// as usual but is machine-dependent; the deterministic work per operation
// — page fetches, page writes, and rows, all counted by the session
// accounts — is recorded to BENCH_session.json so runs can be diffed
// exactly. This lives outside internal/bench on purpose: the figure
// pipelines there are single-session by construction and stay byte-stable.

type sessionBenchMetrics struct {
	// PageFetches counts buffer fetches (reads + hits) per operation. The
	// read/hit split depends on goroutine interleaving; the sum does not.
	PageFetches int64 `json:"page_fetches_per_op"`
	PagesOut    int64 `json:"pages_out_per_op"`
	Rows        int64 `json:"rows_per_op"`
}

var (
	sessionBenchMu      sync.Mutex
	sessionBenchResults = map[string]sessionBenchMetrics{}
)

// TestMain persists the deterministic per-operation work of every
// benchmark that ran. Plain `go test` leaves no artifact behind.
func TestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := writeBenchJSON("BENCH_session.json", sessionBenchResults); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			code = 1
		}
		if err := writeBenchJSON("BENCH_mvcc.json", mvccBenchResults); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			code = 1
		}
	}
	os.Exit(code)
}

// writeBenchJSON writes a benchmark-results map with sorted keys; an empty
// map leaves no artifact behind.
func writeBenchJSON[M any](path string, results map[string]M) error {
	if len(results) == 0 {
		return nil
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make(map[string]M, len(names))
	for _, n := range names {
		out[n] = results[n]
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(data, '\n'), 0o644)
	}
	if err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// buildConcurrencyBenchDB loads a hashed temporal relation of 512 tuples
// with one update round of history — enough that probes, scans, and the
// temporal filter all do real page work.
func buildConcurrencyBenchDB(b *testing.B) *DB {
	b.Helper()
	db := MustOpen(Options{Now: time.Date(1980, 3, 1, 0, 0, 0, 0, time.UTC)})
	if _, err := db.Exec(`create persistent interval acct (id = i4, amount = i4, seq = i4)`); err != nil {
		b.Fatal(err)
	}
	rows := make([][]any, 512)
	for i := range rows {
		rows[i] = []any{i, i * 100, 0}
	}
	if _, err := db.Load("acct", rows); err != nil {
		b.Fatal(err)
	}
	if _, err := db.Exec(`modify acct to hash on id where fillfactor = 100
		range of a is acct`); err != nil {
		b.Fatal(err)
	}
	db.AdvanceClock(time.Hour)
	if _, err := db.Exec(`replace a (seq = a.seq + 1)`); err != nil {
		b.Fatal(err)
	}
	db.AdvanceClock(time.Hour)
	return db
}

// sessionBenchQueries is the fixed per-operation query mix: a hashed key
// probe, a current-version scan, and an all-version key scan.
var sessionBenchQueries = []string{
	`retrieve (a.id, a.seq) where a.id = 100`,
	`retrieve (a.id) where a.amount = 11100 when a overlap "now"`,
	`retrieve (a.id, a.seq) where a.id = 37`,
}

func BenchmarkConcurrentSessions(b *testing.B) {
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("sessions-%d", n), func(b *testing.B) {
			db := buildConcurrencyBenchDB(b)
			sessions := make([]*Session, n)
			for i := range sessions {
				sessions[i] = db.Session(fmt.Sprintf("bench-%d", i))
				if _, err := sessions[i].Exec(`range of a is acct`); err != nil {
					b.Fatal(err)
				}
			}
			rows := make([]int64, n)
			errs := make([]error, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for si, s := range sessions {
					wg.Add(1)
					go func(si int, s *Session) {
						defer wg.Done()
						for _, q := range sessionBenchQueries {
							res, err := s.Exec(q)
							if err != nil {
								errs[si] = err
								return
							}
							rows[si] += int64(len(res.Rows))
						}
					}(si, s)
				}
				wg.Wait()
			}
			b.StopTimer()
			for si, err := range errs {
				if err != nil {
					b.Fatalf("session %d: %v", si, err)
				}
			}

			// Per-operation work, from the session accounts. Every session
			// ran the identical mix b.N times, so the totals divide evenly;
			// a remainder would mean the accounting leaked.
			var fetches, out, totalRows int64
			for si, s := range sessions {
				st := s.Stats()
				fetches += st.Reads + st.Hits
				out += st.Writes
				totalRows += rows[si]
				if rows[si]*int64(n) != rows[0]*int64(n) || rows[si] != rows[0] {
					b.Fatalf("session %d saw %d rows, session 0 saw %d", si, rows[si], rows[0])
				}
			}
			ops := int64(b.N) * int64(n)
			if fetches%ops != 0 || totalRows%ops != 0 {
				b.Fatalf("per-session work not uniform: %d fetches, %d rows over %d ops",
					fetches, totalRows, ops)
			}
			m := sessionBenchMetrics{
				PageFetches: fetches / ops,
				PagesOut:    out / ops,
				Rows:        totalRows / ops,
			}
			b.ReportMetric(float64(m.PageFetches), "pageFetches/op")
			b.ReportMetric(float64(m.Rows), "rows/op")
			sessionBenchMu.Lock()
			sessionBenchResults[fmt.Sprintf("ConcurrentSessions/%d", n)] = m
			sessionBenchMu.Unlock()
		})
	}
}
